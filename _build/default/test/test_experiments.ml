(* Tests for the experiments layer: Monte Carlo aggregation, figure data
   structures and rendering, the fig1/fig2 sweeps (at toy scale) and the
   fig3 bandwidth search. *)

module Pool = Cocheck_parallel.Pool
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Strategy = Cocheck_core.Strategy
module Units = Cocheck_util.Units
module Stats = Cocheck_util.Stats
module E = Cocheck_experiments

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let tiny_platform ?(bandwidth = 1.0) ?(mtbf_years = 0.1) () =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:bandwidth
    ~node_mtbf_s:(Units.years mtbf_years)

let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

(* ------------------------------------------------------------------ *)
(* Montecarlo                                                           *)
(* ------------------------------------------------------------------ *)

let test_measure_shapes () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let ms =
        E.Montecarlo.measure ~pool ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
          ~strategies:[ Strategy.Least_waste; Strategy.Ordered Strategy.Daly ]
          ~reps:4 ~seed:1 ~days:0.5 ()
      in
      Alcotest.(check int) "one measurement per strategy" 2 (List.length ms);
      List.iter
        (fun m ->
          Alcotest.(check int) "4 ratios" 4 (Array.length m.E.Montecarlo.ratios);
          Alcotest.(check int) "stats over 4" 4 m.E.Montecarlo.stats.Stats.n;
          Array.iter
            (fun r -> Alcotest.(check bool) "ratio finite and >= 0" true (r >= 0.0 && Float.is_finite r))
            m.ratios)
        ms)

let test_measure_deterministic () =
  let run () =
    Pool.with_pool ~num_domains:0 (fun pool ->
        E.Montecarlo.measure ~pool ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
          ~strategies:[ Strategy.Least_waste ] ~reps:3 ~seed:11 ~days:0.5 ())
  in
  let a = run () and b = run () in
  List.iter2
    (fun ma mb ->
      Array.iteri
        (fun i r -> checkf "identical ratios" ~eps:0.0 r mb.E.Montecarlo.ratios.(i))
        ma.E.Montecarlo.ratios)
    a b

let test_measure_parallel_matches_sequential () =
  let run domains =
    Pool.with_pool ~num_domains:domains (fun pool ->
        E.Montecarlo.measure ~pool ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
          ~strategies:[ Strategy.Ordered_nb Strategy.Daly ] ~reps:4 ~seed:2 ~days:0.5 ())
  in
  let seq = run 0 and par = run 2 in
  List.iter2
    (fun ms mp ->
      Array.iteri
        (fun i r -> checkf "scheduling-independent" ~eps:0.0 r mp.E.Montecarlo.ratios.(i))
        ms.E.Montecarlo.ratios)
    seq par

let test_rep_seed_distinct () =
  let s = E.Montecarlo.rep_seed ~seed:42 ~rep:0 in
  let s' = E.Montecarlo.rep_seed ~seed:42 ~rep:1 in
  Alcotest.(check bool) "rep seeds distinct" true (s <> s')

let test_mean_waste_positive () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let w =
        E.Montecarlo.mean_waste ~pool ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
          ~strategy:(Strategy.Oblivious (Strategy.Fixed 600.0)) ~reps:2 ~seed:1 ~days:0.5 ()
      in
      Alcotest.(check bool) "positive waste" true (w > 0.0 && w < 1.5))

(* ------------------------------------------------------------------ *)
(* Figures                                                              *)
(* ------------------------------------------------------------------ *)

let sample_figure () =
  let stats = Stats.candlestick [| 0.1; 0.2; 0.3 |] in
  {
    E.Figures.id = "figX";
    title = "test";
    x_label = "x";
    y_label = "y";
    log_x = false;
    series =
      [
        { E.Figures.label = "sim"; points = [ E.Figures.sim_point ~x:1.0 stats ] };
        {
          E.Figures.label = "model";
          points =
            [ E.Figures.analytic_point ~x:1.0 0.15; E.Figures.analytic_point ~x:2.0 0.1 ];
        };
      ];
  }

let test_figure_table () =
  let t = E.Figures.to_table (sample_figure ()) in
  let s = Cocheck_util.Table.render t in
  Alcotest.(check bool) "has sim column" true (contains s "sim");
  Alcotest.(check bool) "missing point dashed" true (contains s "-");
  Alcotest.(check bool) "candlestick range shown" true (contains s "[")

let test_figure_csv () =
  let csv = E.Figures.to_csv (sample_figure ()) in
  Alcotest.(check bool) "header" true (contains csv "series,x,mean");
  Alcotest.(check bool) "analytic rows have empty stats" true (contains csv "model,2,0.1,,,,,,")

let test_figure_render () =
  let s = E.Figures.render (sample_figure ()) in
  Alcotest.(check bool) "contains title" true (contains s "FIGX");
  Alcotest.(check bool) "contains legend" true (contains s "model")

let test_series_value_at () =
  let fig = sample_figure () in
  Alcotest.(check (option (float 1e-9))) "analytic lookup" (Some 0.15)
    (E.Figures.series_value_at fig ~label:"model" ~x:1.0);
  Alcotest.(check (option (float 1e-9))) "sim lookup is mean" (Some 0.2)
    (E.Figures.series_value_at fig ~label:"sim" ~x:1.0);
  Alcotest.(check (option (float 1e-9))) "missing" None
    (E.Figures.series_value_at fig ~label:"nope" ~x:1.0)

(* ------------------------------------------------------------------ *)
(* Sweep / Table1                                                       *)
(* ------------------------------------------------------------------ *)

let test_theoretical_waste_decreases_with_bandwidth () =
  let w b = E.Sweep.theoretical_waste ~platform:(Platform.cielo ~bandwidth_gbs:b ()) () in
  Alcotest.(check bool) "monotone" true (w 160.0 < w 40.0)

let test_sweep_includes_theory_series () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let series =
        E.Sweep.waste_vs ~pool
          ~points:[ (1.0, tiny_platform ()) ]
          ~classes:[ tiny_class ]
          ~strategies:[ Strategy.Least_waste ]
          ~reps:2 ~seed:1 ~days:0.5 ()
      in
      Alcotest.(check int) "strategy + theory" 2 (List.length series);
      let labels = List.map (fun s -> s.E.Figures.label) series in
      Alcotest.(check bool) "theory labelled" true (List.mem "Theoretical Model" labels))

let test_table1_renders_workload_and_derived () =
  let s = E.Table1.render () in
  List.iter
    (fun frag -> Alcotest.(check bool) (frag ^ " present") true (contains s frag))
    [ "EAP"; "VPIC"; "Daly period"; "Workload" ]

(* ------------------------------------------------------------------ *)
(* Fig3 search                                                          *)
(* ------------------------------------------------------------------ *)

let test_fig3_theoretical_monotone_in_mtbf () =
  let b y =
    E.Fig3.min_bandwidth_theoretical ~node_mtbf_years:y ~target_efficiency:0.8 ()
  in
  Alcotest.(check bool) "more reliable needs less bandwidth" true (b 25.0 < b 5.0)

let test_fig3_theoretical_monotone_in_target () =
  let b e = E.Fig3.min_bandwidth_theoretical ~node_mtbf_years:10.0 ~target_efficiency:e () in
  Alcotest.(check bool) "higher target needs more bandwidth" true (b 0.9 > b 0.7)

let test_fig3_theoretical_consistent_with_bound () =
  (* At the returned bandwidth the bound must be at or below the target
     waste (and above it slightly below the returned bandwidth). *)
  let y = 10.0 and target = 0.8 in
  let b = E.Fig3.min_bandwidth_theoretical ~node_mtbf_years:y ~target_efficiency:target () in
  let waste_at beta =
    let platform = Platform.prospective ~bandwidth_gbs:beta ~node_mtbf_years:y () in
    E.Sweep.theoretical_waste ~platform ()
  in
  Alcotest.(check bool) "feasible at b" true (waste_at b <= (1.0 -. target) +. 1e-6);
  Alcotest.(check bool) "infeasible below b" true
    (waste_at (b /. 1.05) > (1.0 -. target) -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let test_period_scaling_study () =
  let s = E.Ablations.period_scaling () in
  Alcotest.(check int) "six gamma rows" 6 (List.length s.E.Ablations.rows);
  (* gamma = 1 minimises the analytic waste per class. *)
  let waste g name =
    Option.get (E.Ablations.value s ~row:(Printf.sprintf "gamma=%g" g) ~col:(name ^ " waste"))
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " min at Daly") true
        (waste 1.0 name <= waste 0.5 name && waste 1.0 name <= waste 2.0 name))
    [ "EAP"; "LAP"; "Silverton"; "VPIC" ];
  (* Pressure scales as 1/gamma. *)
  let f g = Option.get (E.Ablations.value s ~row:(Printf.sprintf "gamma=%g" g) ~col:"EAP F") in
  Alcotest.(check (float 1e-6)) "pressure halves at gamma 2" (f 1.0 /. 2.0) (f 2.0)

let test_interference_ablation_small () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let s =
        E.Ablations.interference_model ~pool ~reps:2 ~seed:3 ~days:4.0
          ~alphas:[ 0.0; 1.0 ] ()
      in
      let v alpha col =
        Option.get (E.Ablations.value s ~row:(Printf.sprintf "alpha=%g" alpha) ~col)
      in
      (* Token strategies never run concurrent transfers, so alpha cannot
         hurt them; Oblivious it must hurt. *)
      Alcotest.(check bool) "oblivious hurt by alpha" true
        (v 1.0 "Oblivious-Daly" > v 0.0 "Oblivious-Daly");
      Alcotest.(check bool) "least-waste immune" true
        (Float.abs (v 1.0 "Least-Waste" -. v 0.0 "Least-Waste") < 0.02))

let test_optimal_periods_ablation_small () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let s =
        E.Ablations.optimal_periods ~pool ~reps:2 ~seed:4 ~days:4.0
          ~bandwidths_gbs:[ 30.0 ] ()
      in
      let v col = Option.get (E.Ablations.value s ~row:"30 GB/s" ~col) in
      (* In the constrained regime the Theorem-1 periods should not do
         worse than Daly under the same scheduler (tolerance for the tiny
         Monte Carlo). *)
      Alcotest.(check bool)
        (Printf.sprintf "optimal %.3f <= daly %.3f + 0.05" (v "Ordered-NB-Optimal")
           (v "Ordered-NB-Daly"))
        true
        (v "Ordered-NB-Optimal" <= v "Ordered-NB-Daly" +. 0.05);
      Alcotest.(check bool) "bound column present" true (v "Theoretical Model" > 0.0))

let test_fixed_period_ablation_small () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let s =
        E.Ablations.fixed_period ~pool ~reps:2 ~seed:4 ~days:4.0
          ~periods_s:[ 1800.0; 14400.0 ] ()
      in
      let v row col = Option.get (E.Ablations.value s ~row ~col) in
      (* On the saturated 40 GB/s PFS, longer fixed periods relieve the
         blocking strategy. *)
      Alcotest.(check bool) "longer period helps oblivious" true
        (v "4.00h" "Oblivious-Fixed" < v "30.00m" "Oblivious-Fixed"))

let test_ablation_render () =
  let s = E.Ablations.period_scaling () in
  Alcotest.(check bool) "renders" true
    (String.length (Cocheck_util.Table.render s.E.Ablations.table) > 100);
  Alcotest.(check (option (float 0.0))) "missing lookup" None
    (E.Ablations.value s ~row:"nope" ~col:"EAP F")

(* ------------------------------------------------------------------ *)
(* End-to-end small figures                                             *)
(* ------------------------------------------------------------------ *)

let test_fig1_small_end_to_end () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let fig =
        E.Fig1.run ~pool ~bandwidths_gbs:[ 40.0; 160.0 ] ~reps:2 ~seed:1 ~days:3.0 ()
      in
      Alcotest.(check int) "8 series (7 strategies + theory)" 8
        (List.length fig.E.Figures.series);
      (* The headline shape: at 160 GB/s, Least-Waste is no worse than
         Oblivious-Fixed. *)
      let v label =
        Option.get (E.Figures.series_value_at fig ~label ~x:160.0)
      in
      Alcotest.(check bool) "LW <= Oblivious-Fixed at 160" true
        (v "Least-Waste" <= v "Oblivious-Fixed");
      let csv = E.Figures.to_csv fig in
      Alcotest.(check bool) "csv has data rows" true
        (List.length (String.split_on_char '\n' csv) > 10))

let test_fig2_small_end_to_end () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let fig = E.Fig2.run ~pool ~mtbf_years:[ 2.0; 50.0 ] ~reps:2 ~seed:1 ~days:3.0 () in
      Alcotest.(check bool) "log x" true fig.E.Figures.log_x;
      (* Fixed blocking strategies stay saturated at high MTBF while Daly
         variants improve dramatically (the paper's central Figure 2
         observation). *)
      let v label x = Option.get (E.Figures.series_value_at fig ~label ~x) in
      Alcotest.(check bool) "Ordered-Fixed stuck high at 50y" true
        (v "Ordered-Fixed" 50.0 > 0.5);
      Alcotest.(check bool) "Ordered-Daly improves with MTBF" true
        (v "Ordered-Daly" 50.0 < v "Ordered-Daly" 2.0))

(* ------------------------------------------------------------------ *)
(* Timeline                                                             *)
(* ------------------------------------------------------------------ *)

let test_timeline_reconstruction () =
  (* Hand-built trace: 10-node job from t=0 to t=50, 20-node job from t=25
     to t=75, horizon 100, 4 buckets of 25.
     Busy node-time: [0,25): 10*25 + ... job2 starts at 25.
       bucket0 [0,25):   job1 only            -> 10
       bucket1 [25,50):  job1 + job2          -> 30
       bucket2 [50,75):  job2 only            -> 20
       bucket3 [75,100): empty                -> 0 *)
  let trace = Cocheck_sim.Trace.create () in
  let ev time inst kind = Cocheck_sim.Trace.record trace { Cocheck_sim.Trace.time; job = inst; inst; kind } in
  ev 0.0 1 (Cocheck_sim.Trace.Job_started { restarts = 0; nodes = 10 });
  ev 25.0 2 (Cocheck_sim.Trace.Job_started { restarts = 0; nodes = 20 });
  ev 50.0 1 Cocheck_sim.Trace.Job_completed;
  ev 75.0 2 (Cocheck_sim.Trace.Job_killed { lost_work = 5.0 });
  let tl = E.Timeline.build ~trace ~total_nodes:40 ~horizon:100.0 ~buckets:4 () in
  let means = List.map (fun b -> b.E.Timeline.mean_nodes_busy) tl.E.Timeline.buckets in
  Alcotest.(check (list (float 1e-9))) "bucket means" [ 10.0; 30.0; 20.0; 0.0 ] means;
  checkf "mean utilization" ~eps:1e-9 (15.0 /. 40.0) (E.Timeline.mean_utilization tl);
  let kills = List.map (fun b -> b.E.Timeline.kills) tl.buckets in
  Alcotest.(check (list int)) "kill in last bucket" [ 0; 0; 0; 1 ] kills;
  Alcotest.(check bool) "render works" true (String.length (E.Timeline.render tl) > 50)

let test_timeline_from_simulation () =
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Units.years 2.0)
  in
  let cfg =
    Cocheck_sim.Config.make ~platform ~classes:[ tiny_class ]
      ~strategy:Cocheck_core.Strategy.Least_waste ~seed:2 ~days:1.0 ~with_failures:false ()
  in
  let trace = Cocheck_sim.Trace.create () in
  let r = Cocheck_sim.Simulator.run ~trace cfg in
  let tl =
    E.Timeline.build ~trace ~total_nodes:64 ~horizon:cfg.Cocheck_sim.Config.horizon ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "timeline utilization %.2f high" (E.Timeline.mean_utilization tl))
    true
    (E.Timeline.mean_utilization tl > 0.7);
  let total_starts =
    List.fold_left (fun acc b -> acc + b.E.Timeline.starts) 0 tl.E.Timeline.buckets
  in
  Alcotest.(check int) "all starts bucketed" r.Cocheck_sim.Simulator.jobs_started total_starts

let test_shape_checks_reduced () =
  (* Deterministic given (reps, days, seed): the full harness passes all 12
     claims at this reduced scale too. *)
  Pool.with_pool ~num_domains:0 (fun pool ->
      let checks = E.Shape_checks.run ~pool ~reps:3 ~seed:42 ~days:8.0 () in
      Alcotest.(check int) "twelve claims" 12 (List.length checks);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (c.E.Shape_checks.id ^ ": " ^ c.detail)
            true c.passed)
        checks;
      Alcotest.(check bool) "render mentions verdicts" true
        (String.length (E.Shape_checks.render checks) > 500))

let () =
  Alcotest.run "cocheck.experiments"
    [
      ( "montecarlo",
        [
          Alcotest.test_case "measurement shapes" `Quick test_measure_shapes;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "parallel = sequential" `Quick test_measure_parallel_matches_sequential;
          Alcotest.test_case "rep seeds distinct" `Quick test_rep_seed_distinct;
          Alcotest.test_case "mean waste positive" `Quick test_mean_waste_positive;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table" `Quick test_figure_table;
          Alcotest.test_case "csv" `Quick test_figure_csv;
          Alcotest.test_case "render" `Quick test_figure_render;
          Alcotest.test_case "series lookup" `Quick test_series_value_at;
        ] );
      ( "sweep-table1",
        [
          Alcotest.test_case "theory monotone in bandwidth" `Quick
            test_theoretical_waste_decreases_with_bandwidth;
          Alcotest.test_case "theory series included" `Quick test_sweep_includes_theory_series;
          Alcotest.test_case "table1 renders" `Quick test_table1_renders_workload_and_derived;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "monotone in MTBF" `Quick test_fig3_theoretical_monotone_in_mtbf;
          Alcotest.test_case "monotone in target" `Quick test_fig3_theoretical_monotone_in_target;
          Alcotest.test_case "consistent with bound" `Quick test_fig3_theoretical_consistent_with_bound;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "period scaling" `Quick test_period_scaling_study;
          Alcotest.test_case "interference (small)" `Slow test_interference_ablation_small;
          Alcotest.test_case "optimal periods (small)" `Slow test_optimal_periods_ablation_small;
          Alcotest.test_case "fixed period (small)" `Slow test_fixed_period_ablation_small;
          Alcotest.test_case "render + lookup" `Quick test_ablation_render;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "hand-built reconstruction" `Quick test_timeline_reconstruction;
          Alcotest.test_case "from simulation" `Quick test_timeline_from_simulation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fig1 (toy scale)" `Slow test_fig1_small_end_to_end;
          Alcotest.test_case "fig2 (toy scale)" `Slow test_fig2_small_end_to_end;
          Alcotest.test_case "shape checks (reduced)" `Slow test_shape_checks_reduced;
        ] );
    ]
