(* Tests for cocheck.model: platform presets, application-class arithmetic,
   the APEX workload table, and job-list generation. *)

open Cocheck_model
module Rng = Cocheck_util.Rng
module Units = Cocheck_util.Units

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Platform                                                             *)
(* ------------------------------------------------------------------ *)

let test_cielo_dimensions () =
  let p = Platform.cielo () in
  Alcotest.(check int) "node count" 17_888 p.Platform.nodes;
  checkf "total memory 286 TB" ~eps:1.0 286_000.0 (Platform.total_memory_gb p);
  checkf "bandwidth" 160.0 p.Platform.bandwidth_gbs

let test_cielo_system_mtbf_arithmetic () =
  (* The paper: node MTBF 2 y <-> system MTBF ~1 h; 50 y <-> ~24 h. *)
  let p2 = Platform.cielo ~node_mtbf_years:2.0 () in
  let h = Units.to_hours (Platform.system_mtbf p2) in
  Alcotest.(check bool) (Printf.sprintf "2y -> %.2fh (~1h)" h) true (h > 0.9 && h < 1.1);
  let p50 = Platform.cielo ~node_mtbf_years:50.0 () in
  let h50 = Units.to_hours (Platform.system_mtbf p50) in
  Alcotest.(check bool) (Printf.sprintf "50y -> %.1fh (~24h)" h50) true (h50 > 23.0 && h50 < 26.0)

let test_prospective_dimensions () =
  let p = Platform.prospective () in
  Alcotest.(check int) "node count" 50_000 p.Platform.nodes;
  checkf "total memory 7 PB" ~eps:1.0 7_000_000.0 (Platform.total_memory_gb p)

let test_platform_with_updates () =
  let p = Platform.cielo () in
  let p' = Platform.with_bandwidth p 40.0 in
  checkf "bandwidth updated" 40.0 p'.Platform.bandwidth_gbs;
  Alcotest.(check int) "nodes unchanged" p.Platform.nodes p'.Platform.nodes;
  let p'' = Platform.with_node_mtbf p (Units.years 5.0) in
  checkf "mtbf updated" (Units.years 5.0) p''.Platform.node_mtbf_s

let test_platform_validation () =
  Alcotest.check_raises "zero nodes" (Invalid_argument "Platform.make: nodes must be positive")
    (fun () ->
      ignore
        (Platform.make ~name:"x" ~nodes:0 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
           ~node_mtbf_s:1.0))

(* ------------------------------------------------------------------ *)
(* App_class                                                            *)
(* ------------------------------------------------------------------ *)

let platform = Platform.cielo ()

let test_memory_footprint () =
  (* EAP: 2048 nodes x ~16 GB/node = ~32.7 TB. *)
  let m = App_class.memory_gb Apex.eap ~platform in
  Alcotest.(check bool) (Printf.sprintf "EAP memory %.0f GB" m) true
    (m > 32_000.0 && m < 34_000.0)

let test_ckpt_size_percentage () =
  let m = App_class.memory_gb Apex.eap ~platform in
  checkf "ckpt = 160% of memory" ~eps:1e-6 (1.6 *. m) (App_class.ckpt_gb Apex.eap ~platform)

let test_ckpt_time_is_size_over_bandwidth () =
  let c = App_class.ckpt_time Apex.silverton ~platform in
  checkf "C = size/beta" ~eps:1e-6
    (App_class.ckpt_gb Apex.silverton ~platform /. 160.0)
    c

let test_recovery_symmetric () =
  checkf "R = C" ~eps:0.0
    (App_class.ckpt_time Apex.vpic ~platform)
    (App_class.recovery_time Apex.vpic ~platform)

let test_class_mtbf () =
  (* mu_i = mu_ind / q_i. *)
  checkf "EAP MTBF" ~eps:1.0
    (Units.years 2.0 /. 2048.0)
    (App_class.mtbf Apex.eap ~platform)

let test_scale_nodes () =
  let c = App_class.scale_nodes Apex.eap ~factor:2.0 in
  Alcotest.(check int) "doubled" 4096 c.App_class.nodes;
  let tiny = App_class.scale_nodes Apex.lap ~factor:1e-9 in
  Alcotest.(check int) "clamped to 1" 1 tiny.App_class.nodes

let test_class_validation () =
  Alcotest.check_raises "zero walltime"
    (Invalid_argument "App_class.make: walltime must be positive") (fun () ->
      ignore
        (App_class.make ~name:"x" ~workload_pct:10.0 ~walltime_s:0.0 ~nodes:4
           ~input_pct:1.0 ~output_pct:1.0 ~ckpt_pct:1.0 ()))

(* ------------------------------------------------------------------ *)
(* Apex                                                                 *)
(* ------------------------------------------------------------------ *)

let test_apex_shares_sum_to_100 () =
  let total =
    List.fold_left (fun acc c -> acc +. c.App_class.workload_pct) 0.0 Apex.lanl_workload
  in
  checkf "shares" ~eps:1e-9 100.0 total

let test_apex_table1_values () =
  (* Spot-check the embedded Table 1 against the paper. *)
  Alcotest.(check int) "EAP cores /8" 2048 Apex.eap.App_class.nodes;
  checkf "LAP walltime 64h" (Units.hours 64.0) Apex.lap.App_class.walltime_s;
  checkf "Silverton ckpt 350%" 350.0 Apex.silverton.App_class.ckpt_pct;
  checkf "VPIC output 270%" 270.0 Apex.vpic.App_class.output_pct;
  checkf "EAP workload 66%" 66.0 Apex.eap.App_class.workload_pct

let test_apex_fits_cielo () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.App_class.name ^ " fits")
        true
        (c.App_class.nodes <= platform.Platform.nodes))
    Apex.lanl_workload

let test_scaled_workload_proportions () =
  let target = Platform.prospective () in
  let scaled = Apex.scaled_workload ~target in
  List.iter2
    (fun (orig : App_class.t) (s : App_class.t) ->
      let expect =
        float_of_int orig.App_class.nodes *. 50_000.0 /. 17_888.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s scaled %d ~ %.0f" s.App_class.name s.App_class.nodes expect)
        true
        (Float.abs (float_of_int s.App_class.nodes -. expect) <= 1.0))
    Apex.lanl_workload scaled

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_table1_renders () =
  let s = Cocheck_util.Table.render Apex.table1 in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " present") true (contains s name))
    [ "EAP"; "LAP"; "Silverton"; "VPIC" ]

(* ------------------------------------------------------------------ *)
(* Jobgen                                                               *)
(* ------------------------------------------------------------------ *)

let generate ?(seed = 3) ?(days = 10.0) () =
  Jobgen.generate ~rng:(Rng.create ~seed) ~platform ~classes:Apex.lanl_workload
    ~min_duration_s:(Units.days days) ()

let test_jobgen_shares_within_tolerance () =
  let specs = generate () in
  let shares = Jobgen.class_shares specs ~nclasses:4 in
  List.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.2f%% near %.1f%%" c.App_class.name shares.(i)
           c.App_class.workload_pct)
        true
        (Float.abs (shares.(i) -. c.App_class.workload_pct) <= 1.0))
    Apex.lanl_workload

let test_jobgen_enough_work () =
  let specs = generate ~days:10.0 () in
  let total = Array.fold_left (fun acc s -> acc +. Jobgen.node_seconds s) 0.0 specs in
  Alcotest.(check bool) "covers fill target" true
    (total >= 1.15 *. float_of_int platform.Platform.nodes *. Units.days 10.0)

let test_jobgen_walltime_spread =
  QCheck.Test.make ~name:"jobgen_walltimes_within_0.8_1.2" ~count:20 QCheck.small_int
    (fun seed ->
      let specs =
        Jobgen.generate ~rng:(Rng.create ~seed) ~platform ~classes:Apex.lanl_workload
          ~min_duration_s:(Units.days 5.0) ()
      in
      Array.for_all
        (fun s ->
          let c = List.nth Apex.lanl_workload s.Jobgen.class_index in
          s.Jobgen.work_s >= (0.8 *. c.App_class.walltime_s) -. 1e-6
          && s.Jobgen.work_s <= (1.2 *. c.App_class.walltime_s) +. 1e-6)
        specs)

let test_jobgen_deterministic () =
  let a = generate ~seed:5 () and b = generate ~seed:5 () in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i s ->
      Alcotest.(check string) "same class order" s.Jobgen.class_name b.(i).Jobgen.class_name;
      checkf "same work" ~eps:0.0 s.Jobgen.work_s b.(i).Jobgen.work_s)
    a

let test_jobgen_ids_sequential () =
  let specs = generate () in
  Array.iteri (fun i s -> Alcotest.(check int) "id = position" i s.Jobgen.id) specs

let test_jobgen_volumes_positive () =
  let specs = generate () in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "ckpt volume positive" true (s.Jobgen.ckpt_gb > 0.0);
      Alcotest.(check bool) "input volume non-negative" true (s.Jobgen.input_gb >= 0.0))
    specs

let test_jobgen_rejects_oversized_class () =
  let huge =
    App_class.make ~name:"huge" ~workload_pct:50.0 ~walltime_s:3600.0
      ~nodes:(platform.Platform.nodes + 1) ~input_pct:1.0 ~output_pct:1.0 ~ckpt_pct:1.0 ()
  in
  Alcotest.(check bool) "oversized class rejected" true
    (match
       Jobgen.generate ~rng:(Rng.create ~seed:1) ~platform ~classes:[ huge ]
         ~min_duration_s:3600.0 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_jobgen_single_class () =
  let only =
    App_class.make ~name:"only" ~workload_pct:100.0 ~walltime_s:(Units.hours 10.0)
      ~nodes:100 ~input_pct:1.0 ~output_pct:1.0 ~ckpt_pct:10.0 ()
  in
  let specs =
    Jobgen.generate ~rng:(Rng.create ~seed:1) ~platform ~classes:[ only ]
      ~min_duration_s:(Units.days 2.0) ()
  in
  Alcotest.(check bool) "generates jobs" true (Array.length specs > 0);
  let shares = Jobgen.class_shares specs ~nclasses:1 in
  checkf "single class holds 100%" ~eps:1e-9 100.0 shares.(0)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.model"
    [
      ( "platform",
        [
          Alcotest.test_case "cielo dimensions" `Quick test_cielo_dimensions;
          Alcotest.test_case "cielo MTBF arithmetic" `Quick test_cielo_system_mtbf_arithmetic;
          Alcotest.test_case "prospective dimensions" `Quick test_prospective_dimensions;
          Alcotest.test_case "functional updates" `Quick test_platform_with_updates;
          Alcotest.test_case "validation" `Quick test_platform_validation;
        ] );
      ( "app_class",
        [
          Alcotest.test_case "memory footprint" `Quick test_memory_footprint;
          Alcotest.test_case "ckpt percentage" `Quick test_ckpt_size_percentage;
          Alcotest.test_case "C = size/bandwidth" `Quick test_ckpt_time_is_size_over_bandwidth;
          Alcotest.test_case "R = C" `Quick test_recovery_symmetric;
          Alcotest.test_case "class MTBF" `Quick test_class_mtbf;
          Alcotest.test_case "scale nodes" `Quick test_scale_nodes;
          Alcotest.test_case "validation" `Quick test_class_validation;
        ] );
      ( "apex",
        [
          Alcotest.test_case "shares sum to 100" `Quick test_apex_shares_sum_to_100;
          Alcotest.test_case "table 1 values" `Quick test_apex_table1_values;
          Alcotest.test_case "fits Cielo" `Quick test_apex_fits_cielo;
          Alcotest.test_case "prospective scaling" `Quick test_scaled_workload_proportions;
          Alcotest.test_case "table renders" `Quick test_table1_renders;
        ] );
      ( "jobgen",
        [
          Alcotest.test_case "shares within 1%" `Quick test_jobgen_shares_within_tolerance;
          Alcotest.test_case "enough work generated" `Quick test_jobgen_enough_work;
          Alcotest.test_case "deterministic" `Quick test_jobgen_deterministic;
          Alcotest.test_case "sequential ids" `Quick test_jobgen_ids_sequential;
          Alcotest.test_case "positive volumes" `Quick test_jobgen_volumes_positive;
          Alcotest.test_case "oversized class rejected" `Quick test_jobgen_rejects_oversized_class;
          Alcotest.test_case "single class" `Quick test_jobgen_single_class;
        ]
        @ qsuite [ test_jobgen_walltime_spread ] );
    ]
