(* Capacity planning for a prospective machine (the Figure 3 question):
   "how much parallel-filesystem bandwidth must we buy so the platform
   sustains 80 % efficiency?"

   Compares the answer for the status-quo strategy (Oblivious-Fixed, what
   most centers deploy today) with the cooperative Least-Waste scheduler
   and with the theoretical minimum, across the plausible node-MTBF range.
   The gap between the first two columns is the bandwidth (and money) the
   cooperative scheduler saves. *)

module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Fig3 = Cocheck_experiments.Fig3
module Table = Cocheck_util.Table

let () =
  let mtbf_years = [ 5.0; 15.0; 25.0 ] in
  let target = 0.80 in
  Format.printf
    "Prospective system: 50 000 nodes, 7 PB memory, APEX workload scaled up.@.";
  Format.printf "Target: %.0f%% sustained platform efficiency.@.@." (100.0 *. target);
  let table =
    Table.create
      ~headers:
        [
          "Node MTBF (y)";
          "Oblivious-Fixed (TB/s)";
          "Least-Waste (TB/s)";
          "Theoretical (TB/s)";
          "saving";
        ]
  in
  Pool.with_pool (fun pool ->
      List.iter
        (fun y ->
          let search strategy =
            Fig3.min_bandwidth ~pool ~strategy ~node_mtbf_years:y
              ~target_efficiency:target ~reps:2 ~seed:3 ~days:12.0 ~iters:7 ()
          in
          let oblivious = search (Strategy.Oblivious (Strategy.Fixed 3600.0)) in
          let lw = search Strategy.Least_waste in
          let theory =
            Fig3.min_bandwidth_theoretical ~node_mtbf_years:y ~target_efficiency:target ()
          in
          Table.add_row table
            [
              Printf.sprintf "%g" y;
              Printf.sprintf "%.2f" (oblivious /. 1000.0);
              Printf.sprintf "%.2f" (lw /. 1000.0);
              Printf.sprintf "%.2f" (theory /. 1000.0);
              Printf.sprintf "%.1fx" (oblivious /. lw);
            ])
        mtbf_years);
  print_string (Table.render table);
  Format.printf
    "@.Cooperative checkpoint scheduling buys the same efficiency with a fraction@.";
  Format.printf "of the I/O subsystem — or, equivalently, rescues an under-provisioned one.@."
