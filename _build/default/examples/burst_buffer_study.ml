(* The paper's future-work extension, made concrete: putting a burst buffer
   in front of an under-provisioned parallel file system.

   Scenario: Cielo with only 40 GB/s of PFS bandwidth (the paper's scarce
   regime) and a 5-year node MTBF. We add an NVRAM tier of 1 TB/s and sweep
   its capacity. Checkpoints that fit commit at buffer speed and drain to
   the PFS in the background; full buffers spill to the normal strategy
   path. The run reports, per configuration: waste ratio, how many commits
   the buffer absorbed vs spilled, and the breakdown of where waste goes. *)

module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Burst_buffer = Cocheck_sim.Burst_buffer
module Table = Cocheck_util.Table
module Units = Cocheck_util.Units

let () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:5.0 () in
  Format.printf "Scenario: %a@." Platform.pp platform;
  Format.printf "Burst buffer: 1 TB/s write bandwidth, capacity swept below.@.@.";
  let strategy = Strategy.Least_waste in
  let run burst_buffer =
    let cfg s =
      Config.make ~platform ~strategy:s ~seed:11 ~days:15.0 ?burst_buffer ()
    in
    let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
    let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
    let r = Simulator.run ~specs (cfg strategy) in
    (r, Simulator.waste_ratio ~strategy:r ~baseline)
  in
  let table =
    Table.create
      ~headers:
        [ "Capacity"; "waste"; "absorbed"; "spilled"; "ckpt-io ns"; "lost-work ns" ]
  in
  List.iter
    (fun cap ->
      let bb =
        if cap <= 0.0 then None
        else Some { Burst_buffer.capacity_gb = cap; bandwidth_gbs = 1000.0 }
      in
      let r, waste = run bb in
      Table.add_row table
        [
          (if cap <= 0.0 then "none" else Format.asprintf "%a" Units.pp_bytes cap);
          Printf.sprintf "%.3f" waste;
          string_of_int r.Simulator.bb_absorbed;
          string_of_int r.bb_spilled;
          Printf.sprintf "%.3g" (List.assoc Metrics.Ckpt_io r.by_kind);
          Printf.sprintf "%.3g" (List.assoc Metrics.Lost_work r.by_kind);
        ])
    [ 0.0; 60_000.0; 250_000.0; 1_000_000.0 ];
  print_string (Table.render table);
  Format.printf
    "@.Absorbed commits complete at buffer speed, shrinking both the checkpoint@.";
  Format.printf
    "I/O bill and (because commits are quick and frequent) the work lost per@.";
  Format.printf "failure. Spills show where capacity, not bandwidth, binds.@."
