(* The paper's flagship evaluation scenario, end to end: the LANL APEX
   workload (EAP, LAP, Silverton, VPIC) on Cielo with a contended 40 GB/s
   parallel file system and 2-year node MTBF. Runs a small Monte Carlo for
   all seven strategies, prints candlesticks and the waste breakdown of the
   best and worst strategies, and compares everything against the Theorem 1
   lower bound.

   This is a miniature of Figure 1's leftmost column (x = 40 GB/s):
   expect the blocking Fixed strategies near 0.9, the blocking Daly ones
   near 0.8, and the cooperative non-blocking ones near the bound. *)

module Pool = Cocheck_parallel.Pool
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex
module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Montecarlo = Cocheck_experiments.Montecarlo
module Stats = Cocheck_util.Stats
module Table = Cocheck_util.Table

let reps = 10
let days = 20.0

let () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  Format.printf "Scenario: %a@." Platform.pp platform;
  Format.printf "Workload: 4 APEX classes, %d-day segments, %d replications@.@."
    (int_of_float days) reps;

  (* The analytic reference. *)
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform in
  let bound = Lower_bound.solve_model ~classes:counts ~platform () in
  Format.printf "Theorem 1 lower bound: waste %.3f (lambda = %.4g, F = %.3f)@.@."
    bound.Lower_bound.waste bound.lambda bound.io_fraction;

  (* Monte Carlo over the seven strategies. *)
  let measurements =
    Pool.with_pool (fun pool ->
        Montecarlo.measure ~pool ~platform ~strategies:Strategy.paper_seven ~reps ~seed:7
          ~days ())
  in
  let table =
    Table.create ~headers:[ "Strategy"; "mean"; "d1"; "q1"; "median"; "q3"; "d9" ]
  in
  List.iter
    (fun m ->
      let c = m.Montecarlo.stats in
      Table.add_row table
        ([ Strategy.name m.Montecarlo.strategy ]
        @ List.map (Printf.sprintf "%.3f")
            [ c.Stats.mean; c.d1; c.q1; c.median; c.q3; c.d9 ]))
    measurements;
  print_string (Table.render table);

  (* Waste breakdown of the extremes, from one representative run. *)
  let breakdown strategy =
    let cfg s = Config.make ~platform ~strategy:s ~seed:7 ~days () in
    let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
    let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
    let r = Simulator.run ~specs (cfg strategy) in
    Format.printf "@.%s (waste ratio %.3f):@." (Strategy.name strategy)
      (Simulator.waste_ratio ~strategy:r ~baseline);
    List.iter
      (fun (k, v) ->
        if v > 0.0 then
          Format.printf "  %-12s %6.1f%% of enrolled time@." (Metrics.kind_name k)
            (100.0 *. v /. r.enrolled_ns))
      r.by_kind
  in
  breakdown (Strategy.Oblivious (Strategy.Fixed 3600.0));
  breakdown Strategy.Least_waste;
  Format.printf
    "@.Reading: the Fixed blocking strategy spends nearly everything on checkpoint@.";
  Format.printf
    "and recovery traffic through the saturated filesystem; Least-Waste turns most@.";
  Format.printf
    "of that back into work and sits at the Theorem 1 bound for this harsh regime.@."
