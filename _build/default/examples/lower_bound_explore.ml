(* Exploring Theorem 1: how the Lagrange multiplier reshapes per-class
   checkpoint periods as bandwidth tightens.

   For the APEX workload on Cielo, sweeps the filesystem bandwidth and
   prints, per class, the unconstrained Daly period and the constrained
   optimal period of Equation (8), together with lambda, the I/O fraction
   and the resulting platform-waste lower bound. Watch the constraint
   activate below ~55 GB/s and stretch the periods of the small-q classes
   hardest (Equation (8) divides by q_i^2). *)

module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Table = Cocheck_util.Table

let () =
  Format.printf "Theorem 1 on Cielo, APEX workload, node MTBF 2 years.@.@.";
  let headers =
    [ "beta (GB/s)"; "lambda"; "F"; "bound" ]
    @ List.concat_map
        (fun (c : App_class.t) -> [ c.App_class.name ^ " P/Pdaly" ])
        Apex.lanl_workload
  in
  let table = Table.create ~headers in
  List.iter
    (fun bandwidth ->
      let platform = Platform.cielo ~bandwidth_gbs:bandwidth ~node_mtbf_years:2.0 () in
      let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform in
      let r = Lower_bound.solve_model ~classes:counts ~platform () in
      let stretches =
        List.map2 (fun p pd -> Printf.sprintf "%.2f" (p /. pd)) r.Lower_bound.periods
          r.daly_periods
      in
      Table.add_row table
        ([
           Printf.sprintf "%g" bandwidth;
           Printf.sprintf "%.4g" r.lambda;
           Printf.sprintf "%.3f" r.io_fraction;
           Printf.sprintf "%.3f" r.waste;
         ]
        @ stretches))
    [ 30.0; 40.0; 50.0; 55.0; 60.0; 80.0; 120.0; 160.0 ];
  print_string (Table.render table);
  Format.printf
    "@.lambda = 0 (and P = Pdaly) wherever the aggregate Daly demand fits in the@.";
  Format.printf
    "bandwidth; below that, the KKT solution stretches every period until the@.";
  Format.printf "checkpoint traffic exactly fills the filesystem (F = 1).@."
