(* Quickstart: one simulated day-in-the-life of a shared platform.

   Builds the paper's flagship scenario — the LANL APEX workload on Cielo
   with a 40 GB/s parallel file system — and runs a single simulation per
   strategy, printing the waste ratio against the failure-free baseline. *)

module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics

let () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  Format.printf "Platform: %a@." Platform.pp platform;
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:Cocheck_model.Apex.lanl_workload
      ~platform
  in
  let bound = Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform () in
  Format.printf "Theoretical lower bound: waste %.3f (lambda %.4g, F %.3f)@."
    bound.Cocheck_core.Lower_bound.waste bound.lambda bound.io_fraction;
  let days = 10.0 in
  let cfg strategy = Config.make ~platform ~strategy ~seed:1 ~days () in
  let baseline_cfg = cfg Strategy.Baseline in
  let specs = Simulator.generate_specs baseline_cfg in
  Format.printf "Generated %d jobs@." (Array.length specs);
  let t0 = Unix.gettimeofday () in
  let baseline = Simulator.run ~specs baseline_cfg in
  Format.printf "Baseline: progress=%.3e ns, %d jobs completed (%.1fs wall)@."
    baseline.progress_ns baseline.jobs_completed
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun strategy ->
      let t0 = Unix.gettimeofday () in
      let r = Simulator.run ~specs (cfg strategy) in
      Format.printf
        "%-18s waste ratio %.3f  (ckpts %d, aborted %d, restarts %d, failures %d, events %d, %.1fs)@."
        (Strategy.name strategy)
        (Simulator.waste_ratio ~strategy:r ~baseline)
        r.ckpts_committed r.ckpts_aborted r.restarts r.failures_hitting_jobs r.events
        (Unix.gettimeofday () -. t0))
    Strategy.paper_seven
