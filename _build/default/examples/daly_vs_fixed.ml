(* A single-application study: how the checkpoint period drives waste.

   Takes one application class (EAP on Cielo) and sweeps the checkpoint
   period from minutes to many hours, printing the analytic waste model
   of Equation (3) next to a simulation of the same single-class workload,
   and marking the Young/Daly optimum. Also shows the Arunagiri-style
   trade-off: stretching the period above Daly's sheds I/O pressure much
   faster than it adds waste. *)

module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Strategy = Cocheck_core.Strategy
module Daly = Cocheck_core.Daly
module Waste = Cocheck_core.Waste
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Table = Cocheck_util.Table
module Units = Cocheck_util.Units

let () =
  let platform = Platform.cielo ~bandwidth_gbs:160.0 ~node_mtbf_years:2.0 () in
  let c = Apex.eap in
  let ckpt_s = App_class.ckpt_time c ~platform in
  let mtbf_s = App_class.mtbf c ~platform in
  let daly = Daly.period ~ckpt_s ~mtbf_s in
  Format.printf "Application: %a@." App_class.pp c;
  Format.printf "C = %.0f s, per-job MTBF = %.2f h, Daly period = %.0f s (%.2f h)@.@."
    ckpt_s (Units.to_hours mtbf_s) daly (Units.to_hours daly);

  (* Single-class workload so the simulated waste isolates this class. *)
  let eap_only = { c with App_class.workload_pct = 100.0 } in
  let simulate period_s =
    let strategy = Strategy.Ordered_nb (Strategy.Fixed period_s) in
    let cfg s =
      Config.make ~platform ~classes:[ eap_only ] ~strategy:s ~seed:5 ~days:12.0 ()
    in
    let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
    let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
    let r = Simulator.run ~specs (cfg strategy) in
    Simulator.waste_ratio ~strategy:r ~baseline
  in
  let analytic period_s =
    Waste.job_waste ~ckpt_s ~period_s ~recovery_s:ckpt_s ~mtbf_s
  in
  let io_pressure period_s =
    (* Fraction of the PFS this class alone consumes for checkpoints. *)
    let n = 0.66 *. 17_888.0 /. 2048.0 in
    n *. ckpt_s /. period_s
  in
  let table =
    Table.create
      ~headers:[ "period"; "vs Daly"; "analytic waste"; "simulated waste"; "I/O pressure" ]
  in
  List.iter
    (fun factor ->
      let p = daly *. factor in
      Table.add_row table
        [
          Format.asprintf "%a" Units.pp_duration p;
          Printf.sprintf "%.2fx" factor;
          Printf.sprintf "%.4f" (analytic p);
          Printf.sprintf "%.4f" (simulate p);
          Printf.sprintf "%.3f" (io_pressure p);
        ])
    [ 0.25; 0.5; 0.8; 1.0; 1.25; 2.0; 4.0 ];
  print_string (Table.render table);
  Format.printf
    "@.The analytic curve is flat around its minimum: doubling the Daly period@.";
  Format.printf
    "halves the checkpoint I/O pressure at a small waste penalty — the fact the@.";
  Format.printf "constrained optimum of Theorem 1 exploits when bandwidth is scarce.@."
