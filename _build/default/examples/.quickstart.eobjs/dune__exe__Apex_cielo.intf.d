examples/apex_cielo.mli:
