examples/burst_buffer_study.mli:
