examples/lower_bound_explore.mli:
