examples/quickstart.mli:
