examples/quickstart.ml: Array Cocheck_core Cocheck_model Cocheck_sim Format List Unix
