examples/daly_vs_fixed.ml: Cocheck_core Cocheck_model Cocheck_sim Cocheck_util Format List Printf
