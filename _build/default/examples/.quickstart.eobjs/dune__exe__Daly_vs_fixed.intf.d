examples/daly_vs_fixed.mli:
