examples/two_level_study.mli:
