examples/lower_bound_explore.ml: Cocheck_core Cocheck_model Cocheck_util Format List Printf
