examples/burst_buffer_study.ml: Cocheck_core Cocheck_model Cocheck_sim Cocheck_util Format List Printf
