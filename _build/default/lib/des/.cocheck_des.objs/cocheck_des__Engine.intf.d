lib/des/engine.mli:
