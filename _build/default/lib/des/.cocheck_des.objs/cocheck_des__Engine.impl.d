lib/des/engine.ml: Cocheck_util Pqueue Printf
