open Cocheck_util

type spec = {
  id : int;
  class_index : int;
  class_name : string;
  nodes : int;
  work_s : float;
  input_gb : float;
  output_gb : float;
  ckpt_gb : float;
  steady_io_gb : float;
}

let node_seconds s = float_of_int s.nodes *. s.work_s

let spec_of_class ~rng ~platform ~id ~class_index (c : App_class.t) =
  let work_s = Dist.uniform rng ~lo:(0.8 *. c.walltime_s) ~hi:(1.2 *. c.walltime_s) in
  {
    id;
    class_index;
    class_name = c.name;
    nodes = c.nodes;
    work_s;
    input_gb = App_class.input_gb c ~platform;
    output_gb = App_class.output_gb c ~platform;
    ckpt_gb = App_class.ckpt_gb c ~platform;
    steady_io_gb = c.steady_io_gb;
  }

let class_shares specs ~nclasses =
  let per_class = Array.make nclasses 0.0 in
  let total = ref 0.0 in
  Array.iter
    (fun s ->
      let ns = node_seconds s in
      per_class.(s.class_index) <- per_class.(s.class_index) +. ns;
      total := !total +. ns)
    specs;
  if !total = 0.0 then per_class
  else Array.map (fun ns -> 100.0 *. ns /. !total) per_class

let generate ~rng ~platform ~classes ~min_duration_s ?(fill_factor = 1.15)
    ?(tolerance_pct = 1.0) () =
  if classes = [] then invalid_arg "Jobgen.generate: no classes";
  if min_duration_s <= 0.0 then invalid_arg "Jobgen.generate: non-positive duration";
  let classes = Array.of_list classes in
  let nclasses = Array.length classes in
  Array.iter
    (fun (c : App_class.t) ->
      if c.nodes > platform.Platform.nodes then
        invalid_arg
          (Printf.sprintf "Jobgen.generate: class %s needs %d nodes but platform has %d"
             c.name c.nodes platform.Platform.nodes))
    classes;
  let target_total = fill_factor *. float_of_int platform.Platform.nodes *. min_duration_s in
  let used = Array.make nclasses 0.0 in
  let total = ref 0.0 in
  let specs = ref [] in
  let next_id = ref 0 in
  let add class_index =
    let s =
      spec_of_class ~rng ~platform ~id:!next_id ~class_index classes.(class_index)
    in
    incr next_id;
    specs := s :: !specs;
    let ns = node_seconds s in
    used.(class_index) <- used.(class_index) +. ns;
    total := !total +. ns
  in
  (* Draw the class with probability proportional to its node-second deficit
     vs target share, so shares converge as the list grows. *)
  let pick_deficient () =
    let deficits =
      Array.mapi
        (fun i (c : App_class.t) ->
          Float.max 1e-9 ((c.workload_pct /. 100.0 *. Float.max !total 1.0) -. used.(i)))
        classes
    in
    let sum = Array.fold_left ( +. ) 0.0 deficits in
    let x = Rng.float rng sum in
    let rec find i acc =
      if i >= nclasses - 1 then i
      else
        let acc = acc +. deficits.(i) in
        if x < acc then i else find (i + 1) acc
    in
    find 0 0.0
  in
  let shares_ok () =
    !total > 0.0
    && Array.for_all Fun.id
         (Array.mapi
            (fun i (c : App_class.t) ->
              Float.abs ((100.0 *. used.(i) /. !total) -. c.workload_pct)
              <= tolerance_pct)
            classes)
  in
  let max_iter = 1_000_000 in
  let iter = ref 0 in
  while ((!total < target_total) || not (shares_ok ())) && !iter < max_iter do
    add (pick_deficient ());
    incr iter
  done;
  if !iter >= max_iter then failwith "Jobgen.generate: share convergence budget exhausted";
  let arr = Array.of_list !specs in
  Rng.shuffle rng arr;
  (* Re-number so id equals arrival order after the shuffle. *)
  Array.mapi (fun i s -> { s with id = i }) arr
