let hours = Cocheck_util.Units.hours

(* Table 1 of the paper (APEX Workflows report, LANL subset), cores mapped
   to nodes at 8 cores/node to match the paper's system-MTBF arithmetic. *)

let eap =
  App_class.make ~name:"EAP" ~workload_pct:66.0 ~walltime_s:(hours 262.4) ~nodes:2048
    ~input_pct:3.0 ~output_pct:105.0 ~ckpt_pct:160.0 ()

let lap =
  App_class.make ~name:"LAP" ~workload_pct:5.5 ~walltime_s:(hours 64.0) ~nodes:512
    ~input_pct:5.0 ~output_pct:220.0 ~ckpt_pct:185.0 ()

let silverton =
  App_class.make ~name:"Silverton" ~workload_pct:16.5 ~walltime_s:(hours 128.0) ~nodes:4096
    ~input_pct:70.0 ~output_pct:43.0 ~ckpt_pct:350.0 ()

let vpic =
  App_class.make ~name:"VPIC" ~workload_pct:12.0 ~walltime_s:(hours 157.2) ~nodes:3750
    ~input_pct:10.0 ~output_pct:270.0 ~ckpt_pct:85.0 ()

let lanl_workload = [ eap; lap; silverton; vpic ]

let cielo_nodes = (Platform.cielo ()).Platform.nodes

let scaled_workload ~target =
  let factor = float_of_int target.Platform.nodes /. float_of_int cielo_nodes in
  List.map (App_class.scale_nodes ~factor) lanl_workload

let table1 =
  let open Cocheck_util in
  let t =
    Table.create
      ~headers:
        [
          "Workflow";
          "Workload %";
          "Work time (h)";
          "Cores";
          "Input (% mem)";
          "Output (% mem)";
          "Ckpt (% mem)";
        ]
  in
  List.iter
    (fun (c : App_class.t) ->
      Table.add_row t
        [
          c.name;
          Printf.sprintf "%.1f" c.workload_pct;
          Printf.sprintf "%.1f" (Units.to_hours c.walltime_s);
          string_of_int (c.nodes * 8);
          Printf.sprintf "%.0f" c.input_pct;
          Printf.sprintf "%.0f" c.output_pct;
          Printf.sprintf "%.0f" c.ckpt_pct;
        ])
    lanl_workload;
  t
