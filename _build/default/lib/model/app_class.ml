type t = {
  name : string;
  workload_pct : float;
  walltime_s : float;
  nodes : int;
  input_pct : float;
  output_pct : float;
  ckpt_pct : float;
  steady_io_gb : float;
}

let make ~name ~workload_pct ~walltime_s ~nodes ~input_pct ~output_pct ~ckpt_pct
    ?(steady_io_gb = 0.0) () =
  if workload_pct <= 0.0 || workload_pct > 100.0 then
    invalid_arg "App_class.make: workload_pct outside (0, 100]";
  if walltime_s <= 0.0 then invalid_arg "App_class.make: walltime must be positive";
  if nodes <= 0 then invalid_arg "App_class.make: nodes must be positive";
  if input_pct < 0.0 || output_pct < 0.0 || ckpt_pct <= 0.0 then
    invalid_arg "App_class.make: negative I/O percentage";
  if steady_io_gb < 0.0 then invalid_arg "App_class.make: negative steady I/O";
  { name; workload_pct; walltime_s; nodes; input_pct; output_pct; ckpt_pct; steady_io_gb }

let memory_gb t ~platform = float_of_int t.nodes *. platform.Platform.mem_per_node_gb
let input_gb t ~platform = memory_gb t ~platform *. t.input_pct /. 100.0
let output_gb t ~platform = memory_gb t ~platform *. t.output_pct /. 100.0
let ckpt_gb t ~platform = memory_gb t ~platform *. t.ckpt_pct /. 100.0
let ckpt_time t ~platform = ckpt_gb t ~platform /. platform.Platform.bandwidth_gbs
let recovery_time t ~platform = ckpt_time t ~platform
let mtbf t ~platform = platform.Platform.node_mtbf_s /. float_of_int t.nodes

let scale_nodes t ~factor =
  if factor <= 0.0 then invalid_arg "App_class.scale_nodes: factor must be positive";
  { t with nodes = max 1 (int_of_float (Float.round (float_of_int t.nodes *. factor))) }

let pp ppf t =
  Format.fprintf ppf
    "%s: %.1f%% of platform, %d nodes, walltime %a, input %.0f%%, output %.0f%%, ckpt %.0f%% of memory"
    t.name t.workload_pct t.nodes Cocheck_util.Units.pp_duration t.walltime_s t.input_pct
    t.output_pct t.ckpt_pct
