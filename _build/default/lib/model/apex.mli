(** The LANL workload of the APEX Workflows report (the paper's Table 1):
    four application classes — EAP, LAP, Silverton, VPIC — with their
    workload shares, walltimes, sizes and I/O volumes.

    Table 1 lists per-job {e cores}; Cielo's scheduling-node arithmetic in
    the paper implies 8 cores per node, so the classes here carry
    cores / 8 nodes (EAP 2048, LAP 512, Silverton 4096, VPIC 3750). *)

val eap : App_class.t
val lap : App_class.t
val silverton : App_class.t
val vpic : App_class.t

val lanl_workload : App_class.t list
(** The four classes, in Table 1 order. Workload percentages sum to 100. *)

val scaled_workload : target:Platform.t -> App_class.t list
(** Problem-size scaling for a different machine, as in Section 6.2: per-job
    node counts grow proportionally to the node-count ratio vs Cielo, so the
    workload keeps the same platform shares while footprints follow the
    target machine's memory. *)

val table1 : Cocheck_util.Table.t
(** Table 1 rendered verbatim (workload %, work time, cores, I/O sizes). *)
