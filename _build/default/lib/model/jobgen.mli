(** Random instantiation of a job list from application classes, following
    the paper's Section 5 protocol: jobs are drawn class by class, each with
    a work duration uniform in [0.8 w, 1.2 w], until (1) the total work would
    keep the platform busy for at least the requested span and (2) each
    class's share of the generated node-seconds is within 1 percentage point
    of its target workload share. The final list is shuffled; list order is
    the scheduler's arrival/priority order. *)

type spec = {
  id : int;
  class_index : int;  (** index into the class list used for generation *)
  class_name : string;
  nodes : int;
  work_s : float;  (** failure-free compute time of this instance *)
  input_gb : float;
  output_gb : float;
  ckpt_gb : float;
  steady_io_gb : float;
}
(** One job instance. All I/O volumes are precomputed from the class and the
    platform memory at generation time. *)

val node_seconds : spec -> float
(** [nodes × work_s], the resource-accounting unit for workload shares. *)

val generate :
  rng:Cocheck_util.Rng.t ->
  platform:Platform.t ->
  classes:App_class.t list ->
  min_duration_s:float ->
  ?fill_factor:float ->
  ?tolerance_pct:float ->
  unit ->
  spec array
(** Generate a shuffled job list. [fill_factor] (default 1.15) scales the
    node-seconds target [fill_factor × N × min_duration_s] so the platform
    stays saturated beyond the measurement segment. [tolerance_pct] is the
    per-class share tolerance in percentage points (default 1.0, the paper's
    value). Raises [Invalid_argument] if a class needs more nodes than the
    platform has, or [Failure] if shares cannot converge within an iteration
    budget. *)

val class_shares : spec array -> nclasses:int -> float array
(** Realised share (in %) of node-seconds per class index. *)
