(** Shared-platform description: space-shared compute nodes, a time-shared
    parallel file system of aggregate bandwidth [bandwidth_gbs], and node
    MTBF [node_mtbf_s] (the paper's µ_ind).

    Includes the two machines of the paper's evaluation:
    {ul
    {- {b Cielo} (LANL, 1.37 PF): 286 TB memory, 160 GB/s PFS. The paper's
       own arithmetic (node MTBF 2 y ↔ system MTBF 1 h; 50 y ↔ 24 h) implies
       N ≈ 17 500 nodes, i.e. Table 1 "cores" at 8 cores per scheduling node;
       we use N = 17 888 = 143 104 / 8.}
    {- the {b prospective} system of Section 6.2: 50 000 nodes, 7 PB memory
       (Aurora-class), bandwidth left as the swept parameter.}} *)

type t = {
  name : string;
  nodes : int;  (** total compute nodes, the paper's N *)
  mem_per_node_gb : float;
  bandwidth_gbs : float;  (** aggregate PFS bandwidth, β_tot *)
  node_mtbf_s : float;  (** individual node MTBF, µ_ind *)
}

val make :
  name:string ->
  nodes:int ->
  mem_per_node_gb:float ->
  bandwidth_gbs:float ->
  node_mtbf_s:float ->
  t
(** Validating constructor; raises [Invalid_argument] on non-positive
    dimensions. *)

val cielo : ?bandwidth_gbs:float -> ?node_mtbf_years:float -> unit -> t
(** Cielo preset: 17 888 nodes, 286 TB total memory. Defaults: 160 GB/s,
    2-year node MTBF. *)

val prospective : ?bandwidth_gbs:float -> ?node_mtbf_years:float -> unit -> t
(** Prospective system of Section 6.2: 50 000 nodes, 7 PB memory. Defaults:
    1 TB/s, 15-year node MTBF. *)

val system_mtbf : t -> float
(** µ = µ_ind / N: mean time between failures anywhere on the platform. *)

val total_memory_gb : t -> float

val with_bandwidth : t -> float -> t
val with_node_mtbf : t -> float -> t

val pp : Format.formatter -> t -> unit
