type t = {
  name : string;
  nodes : int;
  mem_per_node_gb : float;
  bandwidth_gbs : float;
  node_mtbf_s : float;
}

let make ~name ~nodes ~mem_per_node_gb ~bandwidth_gbs ~node_mtbf_s =
  if nodes <= 0 then invalid_arg "Platform.make: nodes must be positive";
  if mem_per_node_gb <= 0.0 then invalid_arg "Platform.make: memory must be positive";
  if bandwidth_gbs <= 0.0 then invalid_arg "Platform.make: bandwidth must be positive";
  if node_mtbf_s <= 0.0 then invalid_arg "Platform.make: MTBF must be positive";
  { name; nodes; mem_per_node_gb; bandwidth_gbs; node_mtbf_s }

let cielo ?(bandwidth_gbs = 160.0) ?(node_mtbf_years = 2.0) () =
  let nodes = 17_888 in
  make ~name:"Cielo" ~nodes
    ~mem_per_node_gb:(Cocheck_util.Units.tb 286.0 /. float_of_int nodes)
    ~bandwidth_gbs
    ~node_mtbf_s:(Cocheck_util.Units.years node_mtbf_years)

let prospective ?(bandwidth_gbs = 1000.0) ?(node_mtbf_years = 15.0) () =
  let nodes = 50_000 in
  make ~name:"Prospective" ~nodes
    ~mem_per_node_gb:(Cocheck_util.Units.pb 7.0 /. float_of_int nodes)
    ~bandwidth_gbs
    ~node_mtbf_s:(Cocheck_util.Units.years node_mtbf_years)

let system_mtbf t = t.node_mtbf_s /. float_of_int t.nodes
let total_memory_gb t = float_of_int t.nodes *. t.mem_per_node_gb
let with_bandwidth t bandwidth_gbs = { t with bandwidth_gbs }
let with_node_mtbf t node_mtbf_s = { t with node_mtbf_s }

let pp ppf t =
  Format.fprintf ppf "%s: %d nodes, %a memory, %.0f GB/s PFS, node MTBF %a (system %a)"
    t.name t.nodes Cocheck_util.Units.pp_bytes (total_memory_gb t) t.bandwidth_gbs
    Cocheck_util.Units.pp_duration t.node_mtbf_s Cocheck_util.Units.pp_duration
    (system_mtbf t)
