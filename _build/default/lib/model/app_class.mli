(** Application classes (the paper's A_i): sets of jobs with the same size,
    duration, memory footprint and I/O needs. Sizes are expressed as the
    APEX convention — percentages of the job's memory footprint, the
    footprint being the memory of its allocated nodes. *)

type t = {
  name : string;
  workload_pct : float;  (** share of platform node-seconds this class targets *)
  walltime_s : float;  (** typical failure-free work duration, w *)
  nodes : int;  (** nodes per job, q_i *)
  input_pct : float;  (** initial input, % of memory footprint *)
  output_pct : float;  (** final output, % of memory footprint *)
  ckpt_pct : float;  (** checkpoint size, % of memory footprint *)
  steady_io_gb : float;  (** regular I/O volume spread over the makespan
                             (Section 2 assumption); 0 for the APEX classes
                             whose regular I/O is the input/output pair *)
}

val make :
  name:string ->
  workload_pct:float ->
  walltime_s:float ->
  nodes:int ->
  input_pct:float ->
  output_pct:float ->
  ckpt_pct:float ->
  ?steady_io_gb:float ->
  unit ->
  t
(** Validating constructor. *)

val memory_gb : t -> platform:Platform.t -> float
(** Memory footprint: q_i nodes × per-node memory. *)

val input_gb : t -> platform:Platform.t -> float
val output_gb : t -> platform:Platform.t -> float
val ckpt_gb : t -> platform:Platform.t -> float

val ckpt_time : t -> platform:Platform.t -> float
(** C_i: interference-free commit time at full aggregate bandwidth. *)

val recovery_time : t -> platform:Platform.t -> float
(** R_i; the paper assumes symmetric read/write bandwidth so R_i = C_i. *)

val mtbf : t -> platform:Platform.t -> float
(** µ_i = µ_ind / q_i: MTBF experienced by a job of this class. *)

val scale_nodes : t -> factor:float -> t
(** Scale the per-job node count (problem-size scaling for the prospective
    system); at least one node. *)

val pp : Format.formatter -> t -> unit
