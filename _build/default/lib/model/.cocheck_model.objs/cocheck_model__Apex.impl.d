lib/model/apex.ml: App_class Cocheck_util List Platform Printf Table Units
