lib/model/app_class.ml: Cocheck_util Float Format Platform
