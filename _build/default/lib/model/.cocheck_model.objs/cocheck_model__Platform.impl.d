lib/model/platform.ml: Cocheck_util Format
