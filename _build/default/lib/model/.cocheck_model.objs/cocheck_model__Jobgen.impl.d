lib/model/jobgen.ml: App_class Array Cocheck_util Dist Float Fun Platform Printf Rng
