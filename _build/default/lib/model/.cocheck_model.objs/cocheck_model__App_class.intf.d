lib/model/app_class.mli: Format Platform
