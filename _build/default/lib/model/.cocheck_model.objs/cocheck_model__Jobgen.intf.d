lib/model/jobgen.mli: App_class Cocheck_util Platform
