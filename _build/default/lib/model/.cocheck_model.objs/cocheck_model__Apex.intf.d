lib/model/apex.mli: App_class Cocheck_util Platform
