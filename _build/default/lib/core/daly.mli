(** The Young/Daly first-order optimal checkpoint period.

    For a job with checkpoint commit time [C] and MTBF [µ], the period
    minimising the single-job waste of {!Waste.job_waste} is
    [P = sqrt (2 µ C)] (the paper's Equation (5), restricted to λ = 0). *)

val period : ckpt_s:float -> mtbf_s:float -> float
(** [period ~ckpt_s ~mtbf_s] is [sqrt (2 · mtbf_s · ckpt_s)]. Requires both
    arguments positive. *)

val period_for : Cocheck_model.App_class.t -> platform:Cocheck_model.Platform.t -> float
(** Daly period of a class on a platform: C_i at full aggregate bandwidth,
    µ_i = µ_ind / q_i. *)

val valid_regime : ckpt_s:float -> mtbf_s:float -> bool
(** The first-order formula assumes [C ≪ µ]; this reports [C <= µ / 2], the
    usual sanity bound. Outside it the period exceeds µ and the model's
    assumptions degrade. *)
