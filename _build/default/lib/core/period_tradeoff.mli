(** The sub-optimal-period trade-off of Arunagiri, Daly & Teller (ASMTA'10,
    the paper's reference [12]): stretching the checkpoint period beyond
    Young/Daly's sheds I/O pressure much faster than it adds waste, because
    the waste curve is flat around its minimum while pressure falls as 1/γ.

    This is the analytic backbone of the constrained optimum of Theorem 1 —
    and of the ablation bench that sweeps γ. *)

type point = {
  gamma : float;  (** period scale factor, P = γ · P_Daly *)
  period_s : float;
  waste : float;  (** single-job waste at the scaled period, Equation (3) *)
  relative_waste : float;  (** waste / waste(γ = 1) *)
  io_pressure : float;  (** C/P per job: fraction of the device one job uses *)
  relative_pressure : float;  (** pressure / pressure(γ = 1) = 1/γ *)
}

val evaluate :
  ckpt_s:float -> mtbf_s:float -> recovery_s:float -> gamma:float -> point
(** Requires positive [ckpt_s], [mtbf_s], [gamma]; non-negative
    [recovery_s]. *)

val sweep :
  ckpt_s:float -> mtbf_s:float -> recovery_s:float -> gammas:float list -> point list

val pressure_halving_cost : ckpt_s:float -> mtbf_s:float -> recovery_s:float -> float
(** The relative waste increase paid for halving the I/O pressure
    ([γ = 2]). At the Daly optimum the checkpoint and re-execution terms are
    equal, so with negligible R/µ the cost is exactly
    [(1/2 + 2)/2 − 1 = 25 %] of an already-small waste — the quantified form
    of Arunagiri et al.'s observation that longer-than-Daly periods are a
    cheap way to shed I/O pressure. *)

val max_gamma_within : ckpt_s:float -> mtbf_s:float -> recovery_s:float -> budget:float -> float
(** Largest γ ≥ 1 whose waste stays within [(1 + budget) · waste(1)]
    (bisection; [budget >= 0]). The I/O pressure then drops by that same
    factor. *)
