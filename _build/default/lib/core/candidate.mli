(** Candidate descriptions for the Least-Waste token arbitration
    (Section 3.5).

    When the I/O token frees at time [t], the scheduler considers two pools:
    {ul
    {- {b IO-candidates}: jobs blocked on an input, output or recovery
       request — idle for [waited_s] seconds, needing [service_s] seconds of
       exclusive I/O;}
    {- {b Ckpt-candidates}: jobs whose Daly period has elapsed — still
       computing, exposed for [exposed_s] seconds since their last committed
       checkpoint, needing [ckpt_s] seconds to commit.}} *)

type io = {
  key : int;  (** caller's identifier for the winning request *)
  nodes : int;  (** q_j *)
  service_s : float;  (** v_j: exclusive-bandwidth transfer time *)
  waited_s : float;  (** d_j: idle time accumulated so far *)
}

type ckpt = {
  key : int;
  nodes : int;  (** q_j *)
  ckpt_s : float;  (** C_j *)
  exposed_s : float;  (** d_j: time since the last committed checkpoint *)
  recovery_s : float;  (** R_j *)
}

type t = Io of io | Ckpt of ckpt

val key : t -> int
val nodes : t -> int

val service_time : t -> float
(** Exclusive I/O time the candidate needs if selected ([v_j] or [C_j]). *)

val validate : t -> unit
(** Raises [Invalid_argument] on negative durations or non-positive node
    counts. *)
