lib/core/lower_bound.ml: App_class Cocheck_model Cocheck_util List Numerics Waste
