lib/core/waste.mli: Cocheck_model
