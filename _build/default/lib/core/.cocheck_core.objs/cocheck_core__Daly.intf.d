lib/core/daly.mli: Cocheck_model
