lib/core/least_waste.ml: Candidate Cocheck_util List Option
