lib/core/strategy.mli: Format Stdlib
