lib/core/strategy.ml: Float Format Fun List Printf Result String
