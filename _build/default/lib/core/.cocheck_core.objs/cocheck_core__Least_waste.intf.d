lib/core/least_waste.mli: Candidate
