lib/core/two_level.ml: Daly Float Waste
