lib/core/two_level.mli:
