lib/core/period_tradeoff.ml: Cocheck_util Daly List Waste
