lib/core/lower_bound.mli: Cocheck_model Waste
