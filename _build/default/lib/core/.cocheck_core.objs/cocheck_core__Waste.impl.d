lib/core/waste.ml: Array Cocheck_model Cocheck_util List
