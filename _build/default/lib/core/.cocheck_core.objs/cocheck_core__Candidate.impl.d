lib/core/candidate.ml:
