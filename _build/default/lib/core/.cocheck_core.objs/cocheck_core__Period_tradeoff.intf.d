lib/core/period_tradeoff.mli:
