lib/core/daly.ml: App_class Cocheck_model
