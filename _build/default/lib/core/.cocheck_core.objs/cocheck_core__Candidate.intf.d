lib/core/candidate.mli:
