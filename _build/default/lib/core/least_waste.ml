(* Equations (1) and (2) share one shape: W_i = v × Σ_{j ≠ i} term(j), where
   v is the service time of the selected candidate and term(j) depends on
   which pool j belongs to. *)

let inflicted_waste ~node_mtbf_s ~service_s ~self candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste: MTBF must be positive";
  let v = service_s in
  let term (c : Candidate.t) =
    if Candidate.key c = self then 0.0
    else
      match c with
      | Candidate.Io io -> float_of_int io.nodes *. (io.waited_s +. v)
      | Candidate.Ckpt ck ->
          let q = float_of_int ck.nodes in
          q *. q /. node_mtbf_s *. (ck.recovery_s +. ck.exposed_s +. (v /. 2.0))
  in
  v *. Cocheck_util.Numerics.sum_by term candidates

let select ~node_mtbf_s candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste.select: MTBF must be positive";
  List.iter Candidate.validate candidates;
  let best = ref None in
  List.iter
    (fun c ->
      let w =
        inflicted_waste ~node_mtbf_s ~service_s:(Candidate.service_time c)
          ~self:(Candidate.key c) candidates
      in
      match !best with
      | Some (_, w_best) when w >= w_best -> ()
      | _ -> best := Some (c, w))
    candidates;
  Option.map fst !best
