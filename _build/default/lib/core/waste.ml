let job_waste ~ckpt_s ~period_s ~recovery_s ~mtbf_s =
  if period_s <= 0.0 then invalid_arg "Waste.job_waste: period must be positive";
  if mtbf_s <= 0.0 then invalid_arg "Waste.job_waste: MTBF must be positive";
  if ckpt_s < 0.0 || recovery_s < 0.0 then
    invalid_arg "Waste.job_waste: negative resilience cost";
  (ckpt_s /. period_s) +. (((period_s /. 2.0) +. recovery_s) /. mtbf_s)

type class_load = { n : float; q : int; ckpt_s : float; recovery_s : float }

let check_pair classes periods name =
  if List.length classes <> List.length periods then
    invalid_arg (name ^ ": classes/periods arity mismatch")

let platform_waste ~classes ~periods ~total_nodes ~node_mtbf_s =
  check_pair classes periods "Waste.platform_waste";
  if total_nodes <= 0 then invalid_arg "Waste.platform_waste: total_nodes must be positive";
  if node_mtbf_s <= 0.0 then invalid_arg "Waste.platform_waste: MTBF must be positive";
  let terms =
    List.map2
      (fun c p ->
        let mtbf_i = node_mtbf_s /. float_of_int c.q in
        c.n *. float_of_int c.q /. float_of_int total_nodes
        *. job_waste ~ckpt_s:c.ckpt_s ~period_s:p ~recovery_s:c.recovery_s ~mtbf_s:mtbf_i)
      classes periods
  in
  Cocheck_util.Numerics.kahan_sum (Array.of_list terms)

let io_fraction ~classes ~periods =
  check_pair classes periods "Waste.io_fraction";
  let terms =
    List.map2
      (fun c p ->
        if p <= 0.0 then invalid_arg "Waste.io_fraction: period must be positive";
        c.n *. c.ckpt_s /. p)
      classes periods
  in
  Cocheck_util.Numerics.kahan_sum (Array.of_list terms)

let of_model ~classes ~platform ~avail_bandwidth_gbs =
  if avail_bandwidth_gbs <= 0.0 then invalid_arg "Waste.of_model: no bandwidth available";
  List.map
    (fun (n, c) ->
      let size = Cocheck_model.App_class.ckpt_gb c ~platform in
      let ckpt_s = size /. avail_bandwidth_gbs in
      { n; q = c.Cocheck_model.App_class.nodes; ckpt_s; recovery_s = ckpt_s })
    classes

let steady_state_counts ~classes ~platform =
  List.map
    (fun (c : Cocheck_model.App_class.t) ->
      ( c.workload_pct /. 100.0
        *. float_of_int platform.Cocheck_model.Platform.nodes
        /. float_of_int c.nodes,
        c ))
    classes
