type io = { key : int; nodes : int; service_s : float; waited_s : float }

type ckpt = {
  key : int;
  nodes : int;
  ckpt_s : float;
  exposed_s : float;
  recovery_s : float;
}

type t = Io of io | Ckpt of ckpt

let key = function Io c -> c.key | Ckpt c -> c.key
let nodes = function Io c -> c.nodes | Ckpt c -> c.nodes
let service_time = function Io c -> c.service_s | Ckpt c -> c.ckpt_s

let validate t =
  let bad = invalid_arg in
  match t with
  | Io c ->
      if c.nodes <= 0 then bad "Candidate: non-positive node count";
      if c.service_s < 0.0 then bad "Candidate: negative service time";
      if c.waited_s < 0.0 then bad "Candidate: negative wait"
  | Ckpt c ->
      if c.nodes <= 0 then bad "Candidate: non-positive node count";
      if c.ckpt_s < 0.0 then bad "Candidate: negative checkpoint time";
      if c.exposed_s < 0.0 then bad "Candidate: negative exposure";
      if c.recovery_s < 0.0 then bad "Candidate: negative recovery time"
