(** Analytic waste expressions of Section 4.

    The waste of a job is the ratio of time spent on resilience operations
    (checkpoints; and after each failure, recovery plus lost-work
    re-execution) to the time spent doing useful work. *)

val job_waste : ckpt_s:float -> period_s:float -> recovery_s:float -> mtbf_s:float -> float
(** Equation (3) in per-job-MTBF form:
    [W_i = C/P + (P/2 + R)/µ_i] where [µ_i] is the MTBF seen by the job.
    Requires positive [period_s] and [mtbf_s], non-negative [ckpt_s] and
    [recovery_s]. *)

type class_load = {
  n : float;
      (** n_i: concurrent jobs of the class. Fractional values express
          steady-state averages (a class holding 66 % of the nodes with
          2048-node jobs runs 5.76 jobs on average) *)
  q : int;  (** q_i: nodes per job *)
  ckpt_s : float;  (** C_i at the bandwidth available for CR *)
  recovery_s : float;  (** R_i *)
}
(** Steady-state description of one application class, the input shared by
    the platform waste and the lower bound of Theorem 1. *)

val platform_waste :
  classes:class_load list ->
  periods:float list ->
  total_nodes:int ->
  node_mtbf_s:float ->
  float
(** Equation (4)/(7): node-weighted mean of the per-class wastes,
    [W = Σ (n_i q_i / N) · W_i], at the given checkpoint periods. The two
    lists must have equal length. *)

val io_fraction : classes:class_load list -> periods:float list -> float
(** Equation (6) left-hand side: [F = Σ n_i C_i / P_i], the fraction of time
    the I/O subsystem is busy with checkpoints when they never overlap.
    Feasibility requires [F <= 1]. *)

val of_model :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  avail_bandwidth_gbs:float ->
  class_load list
(** Build steady-state loads from [(n_i, class)] pairs, with C_i = R_i =
    checkpoint size / [avail_bandwidth_gbs]. *)

val steady_state_counts :
  classes:Cocheck_model.App_class.t list ->
  platform:Cocheck_model.Platform.t ->
  (float * Cocheck_model.App_class.t) list
(** The average concurrent job count each class sustains when it holds its
    workload share of the platform: [n_i = (share_i/100) · N / q_i]. *)
