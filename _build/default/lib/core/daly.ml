let period ~ckpt_s ~mtbf_s =
  if ckpt_s <= 0.0 then invalid_arg "Daly.period: checkpoint time must be positive";
  if mtbf_s <= 0.0 then invalid_arg "Daly.period: MTBF must be positive";
  sqrt (2.0 *. mtbf_s *. ckpt_s)

let period_for c ~platform =
  let open Cocheck_model in
  period ~ckpt_s:(App_class.ckpt_time c ~platform) ~mtbf_s:(App_class.mtbf c ~platform)

let valid_regime ~ckpt_s ~mtbf_s = ckpt_s <= mtbf_s /. 2.0
