open Cocheck_util

type input = {
  classes : Waste.class_load list;
  total_nodes : int;
  node_mtbf_s : float;
}

type result = {
  lambda : float;
  periods : float list;
  daly_periods : float list;
  io_fraction : float;
  waste : float;
}

let period_at ~lambda ~total_nodes ~node_mtbf_s (c : Waste.class_load) =
  let n = float_of_int total_nodes and q = float_of_int c.q in
  sqrt (2.0 *. node_mtbf_s *. n *. c.ckpt_s *. ((q /. n) +. lambda) /. (q *. q))

let solve input =
  if input.classes = [] then invalid_arg "Lower_bound.solve: no classes";
  if input.total_nodes <= 0 then invalid_arg "Lower_bound.solve: total_nodes must be positive";
  if input.node_mtbf_s <= 0.0 then invalid_arg "Lower_bound.solve: MTBF must be positive";
  List.iter
    (fun (c : Waste.class_load) ->
      if c.n <= 0.0 || c.q <= 0 || c.ckpt_s <= 0.0 then
        invalid_arg "Lower_bound.solve: degenerate class load")
    input.classes;
  let periods_at lambda =
    List.map
      (period_at ~lambda ~total_nodes:input.total_nodes ~node_mtbf_s:input.node_mtbf_s)
      input.classes
  in
  let excess lambda =
    Waste.io_fraction ~classes:input.classes ~periods:(periods_at lambda) -. 1.0
  in
  (* F(λ) is strictly decreasing in λ, so the KKT multiplier is the smallest
     non-negative root of F(λ) = 1 (0 when F(0) <= 1 already). *)
  let lambda = Numerics.find_min_positive ~f:excess ~hi0:1.0 () in
  let periods = periods_at lambda in
  let daly_periods = periods_at 0.0 in
  {
    lambda;
    periods;
    daly_periods;
    io_fraction = Waste.io_fraction ~classes:input.classes ~periods;
    waste =
      Waste.platform_waste ~classes:input.classes ~periods ~total_nodes:input.total_nodes
        ~node_mtbf_s:input.node_mtbf_s;
  }

let steady_state_regular_io_gbs ~classes ~platform =
  Numerics.sum_by
    (fun (n, c) ->
      let open Cocheck_model in
      n
      *. (App_class.input_gb c ~platform +. App_class.output_gb c ~platform)
      /. c.App_class.walltime_s)
    classes

let solve_model ~classes ~platform ?avail_bandwidth_gbs () =
  let avail =
    match avail_bandwidth_gbs with
    | Some b -> b
    | None ->
        platform.Cocheck_model.Platform.bandwidth_gbs
        -. steady_state_regular_io_gbs ~classes ~platform
  in
  if avail <= 0.0 then
    invalid_arg "Lower_bound.solve_model: regular I/O saturates the bandwidth";
  solve
    {
      classes = Waste.of_model ~classes ~platform ~avail_bandwidth_gbs:avail;
      total_nodes = platform.Cocheck_model.Platform.nodes;
      node_mtbf_s = platform.Cocheck_model.Platform.node_mtbf_s;
    }
