(** Theorem 1: the lower bound on platform waste under the aggregate I/O
    constraint [F = Σ n_i C_i / P_i <= 1].

    The optimal periods come from the KKT conditions of minimising the
    platform waste (Equation (7)) under the constraint (Equation (6)):

    [P_i(λ) = sqrt (2 µ N C_i (q_i/N + λ) / q_i²)]           (Equation (8))

    where λ ≥ 0 is the Lagrange multiplier, 0 when the unconstrained Daly
    periods already fit in the available I/O bandwidth. λ has no closed
    form: [F(λ)] is strictly decreasing, so we bisect for the smallest λ
    with [F(λ) <= 1]. *)

type input = {
  classes : Waste.class_load list;
  total_nodes : int;  (** N *)
  node_mtbf_s : float;  (** µ_ind *)
}

type result = {
  lambda : float;  (** 0 when the I/O constraint is slack *)
  periods : float list;  (** per-class optimal periods, Equation (8) order-aligned *)
  daly_periods : float list;  (** unconstrained periods (λ = 0) for reference *)
  io_fraction : float;  (** F at the optimal periods; = 1 when constrained *)
  waste : float;  (** the lower bound, Equation (7) *)
}

val period_at : lambda:float -> total_nodes:int -> node_mtbf_s:float -> Waste.class_load -> float
(** Equation (8) for one class. *)

val solve : input -> result
(** Compute the bound. Raises [Invalid_argument] on empty class lists or
    non-positive dimensions. *)

val solve_model :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  ?avail_bandwidth_gbs:float ->
  unit ->
  result
(** Convenience wrapper: build the steady-state loads from model classes.
    [avail_bandwidth_gbs] defaults to the platform bandwidth minus the
    steady-state regular-I/O demand [Σ n_i (input_i + output_i) / walltime_i]
    (the Section 4 assumption that initial/final I/O spans the execution). *)

val steady_state_regular_io_gbs :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  float
(** The regular-I/O bandwidth demand subtracted by {!solve_model}'s
    default. *)
