(** The Least-Waste selection heuristic (Equations (1) and (2)).

    Serving candidate [i] for [v] seconds inflicts on every other candidate
    [j] an expected waste:
    {ul
    {- [j] an IO-candidate: [q_j · (d_j + v)] node-seconds of additional
       deterministic idling;}
    {- [j] a Ckpt-candidate: [v/µ_j · q_j · (R_j + d_j + v/2)] expected
       node-seconds — the probability [v/µ_j] that a failure strikes [j]
       during the service window times the recovery-and-rework it would then
       pay (with [µ_j = µ_ind / q_j], this is
       [v · q_j² / µ_ind · (R_j + d_j + v/2)]).}}

    The token goes to the candidate minimising the total waste inflicted on
    the others. *)

val inflicted_waste : node_mtbf_s:float -> service_s:float -> self:int -> Candidate.t list -> float
(** [inflicted_waste ~node_mtbf_s ~service_s ~self candidates] is the waste
    [W_i] of Equations (1)/(2): serving for [service_s] seconds, summed over
    every candidate whose key differs from [self]. *)

val select : node_mtbf_s:float -> Candidate.t list -> Candidate.t option
(** The candidate with minimal inflicted waste; ties break towards the
    earliest in the list (FCFS among equals). [None] on an empty list.
    Raises [Invalid_argument] if any candidate fails
    {!Candidate.validate} or [node_mtbf_s <= 0]. *)
