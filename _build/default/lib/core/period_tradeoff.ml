type point = {
  gamma : float;
  period_s : float;
  waste : float;
  relative_waste : float;
  io_pressure : float;
  relative_pressure : float;
}

let evaluate ~ckpt_s ~mtbf_s ~recovery_s ~gamma =
  if gamma <= 0.0 then invalid_arg "Period_tradeoff.evaluate: gamma must be positive";
  let daly = Daly.period ~ckpt_s ~mtbf_s in
  let period_s = gamma *. daly in
  let waste = Waste.job_waste ~ckpt_s ~period_s ~recovery_s ~mtbf_s in
  let waste_daly = Waste.job_waste ~ckpt_s ~period_s:daly ~recovery_s ~mtbf_s in
  {
    gamma;
    period_s;
    waste;
    relative_waste = waste /. waste_daly;
    io_pressure = ckpt_s /. period_s;
    relative_pressure = 1.0 /. gamma;
  }

let sweep ~ckpt_s ~mtbf_s ~recovery_s ~gammas =
  List.map (fun gamma -> evaluate ~ckpt_s ~mtbf_s ~recovery_s ~gamma) gammas

let pressure_halving_cost ~ckpt_s ~mtbf_s ~recovery_s =
  (evaluate ~ckpt_s ~mtbf_s ~recovery_s ~gamma:2.0).relative_waste -. 1.0

let max_gamma_within ~ckpt_s ~mtbf_s ~recovery_s ~budget =
  if budget < 0.0 then invalid_arg "Period_tradeoff.max_gamma_within: negative budget";
  let base = (evaluate ~ckpt_s ~mtbf_s ~recovery_s ~gamma:1.0).waste in
  let ceiling = (1.0 +. budget) *. base in
  (* Waste is increasing in gamma for gamma >= 1 (past the minimum), so the
     feasible set is an interval [1, gamma_max]. *)
  let excess gamma = (evaluate ~ckpt_s ~mtbf_s ~recovery_s ~gamma).waste -. ceiling in
  if budget = 0.0 then 1.0
  else begin
    let hi = ref 2.0 in
    while excess !hi < 0.0 && !hi < 1e6 do
      hi := !hi *. 2.0
    done;
    if excess !hi < 0.0 then !hi
    else Cocheck_util.Numerics.bisect ~f:excess ~lo:1.0 ~hi:!hi ()
  end
