(* xoshiro256++ with SplitMix64 seeding (Blackman & Vigna). Chosen over
   [Stdlib.Random] for explicit state, stable cross-version streams, and
   cheap deterministic substream derivation. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  seed : int;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 step: used only to expand seeds into full 256-bit states. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let state_of_seed64 ~seed x =
  let sm = ref x in
  let s0 = splitmix_next sm in
  let s1 = splitmix_next sm in
  let s2 = splitmix_next sm in
  let s3 = splitmix_next sm in
  (* An all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
     four zeros in a row, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L; seed }
  else { s0; s1; s2; s3; seed }

let create ~seed = state_of_seed64 ~seed (Int64.of_int seed)

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tm = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tm;
  t.s3 <- rotl t.s3 45;
  result

let split t = state_of_seed64 ~seed:t.seed (bits64 t)

(* FNV-1a, good enough to map names to well-spread 64-bit values. *)
let hash_name name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let substream t name =
  let mix = Int64.logxor (Int64.of_int t.seed) (hash_name name) in
  state_of_seed64 ~seed:t.seed mix

let copy t = { t with s0 = t.s0 }

let unit_float t =
  (* 53 high bits -> [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t x = unit_float t *. x

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let mask =
    let rec grow m = if m >= Int64.sub n64 1L && m > 0L then m else grow (Int64.add (Int64.shift_left m 1) 1L) in
    grow 1L
  in
  let rec draw () =
    let v = Int64.logand (Int64.shift_right_logical (bits64 t) 1) mask in
    if v < n64 then Int64.to_int v else draw ()
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let seed_of t = t.seed
