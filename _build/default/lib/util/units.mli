(** Unit conventions and conversions.

    Throughout the library: time is in {b seconds} (float), data volumes in
    {b GB} (float, decimal gigabytes as in "160 GB/s" filesystem specs),
    bandwidth in {b GB/s}, node counts are [int]. These helpers keep
    experiment definitions readable ("2 years node MTBF", "286 TB"). *)

val second : float
val minute : float
val hour : float
val day : float
val year : float
(** 365 days, the convention behind the paper's "2-year node MTBF ≈ 1 h
    system MTBF on 17 888 nodes" arithmetic. *)

val minutes : float -> float
val hours : float -> float
val days : float -> float
val years : float -> float
(** [years x] is [x] years in seconds, etc. *)

val gb : float -> float
val tb : float -> float
val pb : float -> float
(** Data volumes in GB. *)

val to_hours : float -> float
val to_days : float -> float
val to_years : float -> float

val pp_duration : Format.formatter -> float -> unit
(** Human-readable duration ("2.5h", "3.1d", "42s"). *)

val pp_bytes : Format.formatter -> float -> unit
(** Human-readable volume from GB ("512GB", "1.4TB"). *)
