(** Deterministic, splittable pseudo-random number generation.

    Monte Carlo experiments need every stochastic choice to be reproducible
    for a given [(seed, replication)] pair, independently of how work is
    distributed over domains. This module provides an explicit-state
    xoshiro256++ generator seeded through SplitMix64, with named substreams
    so that independent parts of a simulation (job durations, failure times,
    shuffles, ...) draw from independent generators. *)

type t
(** Mutable generator state. Not thread-safe: each domain or logical stream
    must own its instance. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds yield
    identical streams. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The two
    streams are statistically independent. *)

val substream : t -> string -> t
(** [substream t name] derives a generator deterministically from [t]'s
    {e seed} and [name], without advancing [t]. Calling it twice with the
    same name yields identical streams, so components can re-derive their
    stream without coordination. *)

val copy : t -> t
(** Duplicate the full current state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly in [\[0, n)]. Requires [n > 0]. Rejection
    sampling: unbiased. *)

val float : t -> float -> float
(** [float t x] draws uniformly in [\[0, x)], using 53 bits of precision. *)

val unit_float : t -> float
(** Uniform draw in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val seed_of : t -> int
(** The seed this generator (or its ancestor chain) originated from; used for
    diagnostics. *)
