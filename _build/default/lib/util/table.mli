(** Plain-text table rendering for experiment reports.

    The benchmark harness prints the same rows the paper's tables and figure
    series contain; this module aligns them into readable monospace tables
    and can also emit CSV for external plotting. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** A table with the given column headers. Column count is fixed by the
    header list; rows with a different arity raise [Invalid_argument]. *)

val set_aligns : t -> align list -> unit
(** Per-column alignment; default all [Right] except the first column
    [Left]. Must match the column count. *)

val add_row : t -> string list -> unit

val add_float_row : t -> label:string -> float list -> unit
(** Convenience: label column followed by values printed with [%.4g]. *)

val render : t -> string
(** Box-drawing-free ASCII rendering with a header separator. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines). *)

val pp : Format.formatter -> t -> unit
