type series = { label : string; points : (float * float) list }

type config = {
  width : int;
  height : int;
  log_x : bool;
  x_label : string;
  y_label : string;
  title : string;
}

let default_config =
  { width = 72; height = 20; log_x = false; x_label = "x"; y_label = "y"; title = "" }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&'; '~'; '$' |]

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(config = default_config) series_list =
  let buf = Buffer.create 4096 in
  if config.title <> "" then begin
    Buffer.add_string buf config.title;
    Buffer.add_char buf '\n'
  end;
  let all_points =
    List.concat_map (fun s -> List.filter finite s.points) series_list
  in
  if all_points = [] then begin
    Buffer.add_string buf "(no data)\n";
    Buffer.contents buf
  end
  else begin
    let tx x = if config.log_x then log (Float.max x 1e-300) else x in
    let xs = List.map (fun (x, _) -> tx x) all_points in
    let ys = List.map snd all_points in
    let xmin = List.fold_left Float.min (List.hd xs) xs in
    let xmax = List.fold_left Float.max (List.hd xs) xs in
    let ymin = List.fold_left Float.min (List.hd ys) ys in
    let ymax = List.fold_left Float.max (List.hd ys) ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let w = max 8 config.width and h = max 4 config.height in
    let grid = Array.make_matrix h w ' ' in
    let plot_series idx s =
      let marker = markers.(idx mod Array.length markers) in
      List.iter
        (fun (x, y) ->
          let col =
            int_of_float (Float.round ((tx x -. xmin) /. xspan *. float_of_int (w - 1)))
          in
          let row =
            (h - 1)
            - int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (h - 1)))
          in
          if row >= 0 && row < h && col >= 0 && col < w then
            (* Later series overwrite earlier ones at collisions; the legend
               tells the reader overlaps may hide markers. *)
            grid.(row).(col) <- marker)
        (List.filter finite s.points)
    in
    List.iteri plot_series series_list;
    let ylab_width = 10 in
    let add_axis_row row =
      let v = ymax -. (float_of_int row /. float_of_int (h - 1) *. yspan) in
      let lab = Printf.sprintf "%9.3g" v in
      let lab =
        if row = 0 || row = h - 1 || row = (h - 1) / 2 then lab
        else String.make (String.length lab) ' '
      in
      Buffer.add_string buf lab;
      Buffer.add_string buf " |"
    in
    for row = 0 to h - 1 do
      add_axis_row row;
      Buffer.add_string buf (String.init w (fun col -> grid.(row).(col)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make ylab_width ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make w '-');
    Buffer.add_char buf '\n';
    let x_left = Printf.sprintf "%.3g" (if config.log_x then exp xmin else xmin) in
    let x_right = Printf.sprintf "%.3g" (if config.log_x then exp xmax else xmax) in
    let mid = config.x_label ^ (if config.log_x then " (log)" else "") in
    let gap =
      max 1 (w - String.length x_left - String.length x_right - String.length mid)
    in
    Buffer.add_string buf (String.make (ylab_width + 1) ' ');
    Buffer.add_string buf x_left;
    Buffer.add_string buf (String.make (gap / 2) ' ');
    Buffer.add_string buf mid;
    Buffer.add_string buf (String.make (gap - (gap / 2)) ' ');
    Buffer.add_string buf x_right;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "y: %s\n" config.y_label);
    List.iteri
      (fun idx s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" markers.(idx mod Array.length markers) s.label))
      series_list;
    Buffer.contents buf
  end
