(** Numerical routines backing the analytical side of the paper: compensated
    summation for long waste accumulations, and root finding for the Lagrange
    multiplier of Theorem 1 and the bandwidth search of Figure 3. *)

val kahan_sum : float array -> float
(** Kahan–Babuška compensated sum. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Compensated sum of [f x] over the list. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [\[lo, hi\]] by bisection.
    Requires [f lo] and [f hi] to have opposite signs (or one of them to be
    zero). [tol] is the absolute interval width at which to stop (default
    [1e-12] relative to the interval). Raises [Invalid_argument] when the
    bracket does not straddle a sign change. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Brent's method: bisection safety with inverse-quadratic speed. Same
    contract as {!bisect}. *)

val find_min_positive :
  ?tol:float -> f:(float -> float) -> hi0:float -> unit -> float
(** [find_min_positive ~f ~hi0 ()] returns the smallest [x >= 0] with
    [f x <= 0], assuming [f] is continuous and decreasing. Returns [0.] when
    [f 0 <= 0] already. The initial upper bracket [hi0] is grown geometrically
    until [f hi <= 0] (raises [Failure] if no bracket below [1e30]). This is
    exactly the shape of the λ search in Theorem 1. *)

val golden_section_min :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Golden-section minimisation of a unimodal function; returns the abscissa
    of the minimum. *)

val integrate_simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson integration with [n] (even, >= 2) panels. *)

val log_gamma : float -> float
(** Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9);
    accurate to ~1e-13 for positive arguments. Raises [Invalid_argument] for
    [x <= 0]. *)

val gamma : float -> float
(** [exp (log_gamma x)]; overflows to [infinity] beyond x ≈ 171. Used to
    mean-match Weibull failure distributions: E = scale · Γ(1 + 1/shape). *)

val fequal : ?eps:float -> float -> float -> bool
(** Approximate float equality with combined absolute/relative tolerance
    (default [1e-9]). *)
