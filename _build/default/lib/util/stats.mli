(** Sample statistics for Monte Carlo result aggregation.

    The paper reports candlesticks per configuration: mean, first/third
    quartiles and first/ninth deciles over at least a thousand replicated
    simulations. *)

type running
(** Welford online accumulator: mean and variance in one pass, no storage. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
(** Mean of the values added so far; [nan] when empty. *)

val running_variance : running -> float
(** Unbiased sample variance; [nan] for fewer than two values. *)

val running_stddev : running -> float

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between order
    statistics (type-7, the R default). The array is not modified. Raises
    [Invalid_argument] on an empty array or [q] outside [\[0,1\]]. *)

type candlestick = {
  mean : float;
  d1 : float;  (** first decile *)
  q1 : float;  (** first quartile *)
  median : float;
  q3 : float;  (** third quartile *)
  d9 : float;  (** ninth decile *)
  n : int;
}
(** The five-number summary the paper draws as candlesticks, plus mean/n. *)

val candlestick : float array -> candlestick
val pp_candlestick : Format.formatter -> candlestick -> unit

val mean_ci : ?confidence:float -> float array -> float * float
(** [(mean, half_width)] of a normal-approximation confidence interval
    around the sample mean (default 95 %; supported confidences: 0.90,
    0.95, 0.99). Requires at least two samples. With Monte Carlo
    replication counts in the hundreds the normal approximation is
    appropriate; for tiny n it understates the width slightly. *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram over the data range. [bins > 0]; empty input gives
    zero counts over [\[0,1\]]. *)
