let second = 1.0
let minute = 60.0
let hour = 3600.0
let day = 86_400.0
let year = 365.0 *. day

let minutes x = x *. minute
let hours x = x *. hour
let days x = x *. day
let years x = x *. year

let gb x = x
let tb x = x *. 1_000.0
let pb x = x *. 1_000_000.0

let to_hours s = s /. hour
let to_days s = s /. day
let to_years s = s /. year

let pp_duration ppf s =
  let a = Float.abs s in
  if a >= year then Format.fprintf ppf "%.2fy" (s /. year)
  else if a >= day then Format.fprintf ppf "%.2fd" (s /. day)
  else if a >= hour then Format.fprintf ppf "%.2fh" (s /. hour)
  else if a >= minute then Format.fprintf ppf "%.2fm" (s /. minute)
  else Format.fprintf ppf "%.2fs" s

let pp_bytes ppf g =
  let a = Float.abs g in
  if a >= 1_000_000.0 then Format.fprintf ppf "%.2fPB" (g /. 1_000_000.0)
  else if a >= 1_000.0 then Format.fprintf ppf "%.2fTB" (g /. 1_000.0)
  else if a >= 1.0 then Format.fprintf ppf "%.1fGB" g
  else Format.fprintf ppf "%.1fMB" (g *. 1_000.0)
