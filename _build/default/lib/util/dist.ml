let exponential rng ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  (* 1 - u in (0,1] avoids log 0. *)
  -.mean *. log1p (-.Rng.unit_float rng)

let uniform rng ~lo ~hi =
  if lo > hi then invalid_arg "Dist.uniform: lo > hi";
  lo +. Rng.float rng (hi -. lo)

let normal rng ~mean ~stddev =
  if stddev < 0.0 then invalid_arg "Dist.normal: negative stddev";
  (* Box–Muller; one variate per call keeps streams position-independent. *)
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let truncated_normal rng ~mean ~stddev ~lo ~hi =
  if lo >= hi then invalid_arg "Dist.truncated_normal: empty interval";
  let rec draw attempts =
    if attempts >= 10_000 then (lo +. hi) /. 2.0
    else
      let x = normal rng ~mean ~stddev in
      if x >= lo && x <= hi then x else draw (attempts + 1)
  in
  draw 0

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let weibull rng ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Dist.weibull: parameters must be positive";
  let u = 1.0 -. Rng.unit_float rng in
  scale *. ((-.log u) ** (1.0 /. shape))

let exponential_cdf ~x ~mean =
  if x <= 0.0 then 0.0 else 1.0 -. exp (-.x /. mean)
