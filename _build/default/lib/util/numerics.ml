let kahan_sum xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let t = !sum +. x in
      (* Kahan–Babuška: pick the compensation branch by magnitude. *)
      if Float.abs !sum >= Float.abs x then comp := !comp +. (!sum -. t +. x)
      else comp := !comp +. (x -. t +. !sum);
      sum := t)
    xs;
  !sum +. !comp

let sum_by f l = kahan_sum (Array.of_list (List.map f l))

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then invalid_arg "Numerics.bisect: no sign change in bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol *. (1.0 +. Float.abs !lo) && !iter < max_iter do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end;
      incr iter
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if !fa = 0.0 then lo
  else if !fb = 0.0 then hi
  else if !fa *. !fb > 0.0 then invalid_arg "Numerics.brent: no sign change in bracket"
  else begin
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    while !fb <> 0.0 && Float.abs (!b -. !a) > tol *. (1.0 +. Float.abs !b) && !iter < max_iter do
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_lim = (3.0 *. !a +. !b) /. 4.0 in
      let in_range =
        if lo_lim < !b then s > lo_lim && s < !b else s > !b && s < lo_lim
      in
      let use_bisect =
        (not in_range)
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0)
      in
      let s = if use_bisect then 0.5 *. (!a +. !b) else s in
      mflag := use_bisect;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end;
      incr iter
    done;
    !b
  end

let find_min_positive ?(tol = 1e-12) ~f ~hi0 () =
  if f 0.0 <= 0.0 then 0.0
  else begin
    let hi = ref (Float.max hi0 1e-9) in
    while f !hi > 0.0 && !hi < 1e30 do
      hi := !hi *. 2.0
    done;
    if f !hi > 0.0 then failwith "Numerics.find_min_positive: no feasible point below 1e30";
    bisect ~tol ~f ~lo:0.0 ~hi:!hi ()
  end

let golden_section_min ?(tol = 1e-9) ~f ~lo ~hi () =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (phi *. (!b -. !a))) in
  let d = ref (!a +. (phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > tol *. (1.0 +. Float.abs !a) do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  0.5 *. (!a +. !b)

let integrate_simpson ~f ~lo ~hi ~n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Numerics.integrate_simpson: n must be even and >= 2";
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. h) in
    acc := !acc +. ((if i mod 2 = 1 then 4.0 else 2.0) *. f x)
  done;
  !acc *. h /. 3.0

(* Lanczos coefficients for g = 7, n = 9 (Boost/GSL standard set). *)
let lanczos_g = 7.0

let lanczos_coeffs =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Numerics.log_gamma: non-positive argument";
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1−x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coeffs.(0) in
    for i = 1 to Array.length lanczos_coeffs - 1 do
      a := !a +. (lanczos_coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)

let fequal ?(eps = 1e-9) a b =
  a = b
  || Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
