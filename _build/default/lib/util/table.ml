type align = Left | Right | Center

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align list;
  mutable rows : string list list;  (* reversed *)
}

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let create ~headers =
  let ncols = List.length headers in
  if ncols = 0 then invalid_arg "Table.create: no columns";
  { headers; ncols; aligns = default_aligns ncols; rows = [] }

let set_aligns t aligns =
  if List.length aligns <> t.ncols then invalid_arg "Table.set_aligns: arity mismatch";
  t.aligns <- aligns

let add_row t row =
  if List.length row <> t.ncols then invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.4g") values)

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter note_row rows;
  let buf = Buffer.create 1024 in
  let trim_right s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let emit_row row =
    let cells = List.mapi (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell) row in
    Buffer.add_string buf (trim_right (String.concat "  " cells));
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  emit_row (Array.to_list (Array.map (fun w -> String.make w '-') widths));
  List.iter emit_row rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) ^ "\n" in
  (* [t.rows] is stored most-recent-first; rev_map restores insertion order. *)
  String.concat "" (line t.headers :: List.rev_map line t.rows)

let pp ppf t = Format.pp_print_string ppf (render t)
