(** Random variate sampling for the distributions the paper's simulator uses:
    exponential failure inter-arrival times, normally distributed job
    durations (20 % relative standard deviation around the APEX walltime),
    and a few extras used in tests (Weibull, lognormal). *)

val exponential : Rng.t -> mean:float -> float
(** [exponential rng ~mean] draws from Exp(1/mean). Requires [mean > 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. Requires [lo <= hi]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Box–Muller Gaussian draw. [stddev >= 0]. *)

val truncated_normal : Rng.t -> mean:float -> stddev:float -> lo:float -> hi:float -> float
(** Gaussian conditioned on [\[lo, hi\]] by rejection; falls back to the
    uniform midpoint after 10 000 rejections (degenerate parameterisations in
    property tests). Requires [lo < hi]. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float

val weibull : Rng.t -> scale:float -> shape:float -> float
(** Inverse-CDF Weibull draw; [shape = 1] degenerates to the exponential. *)

val exponential_cdf : x:float -> mean:float -> float
(** CDF of Exp(1/mean) at [x]; used by goodness-of-fit tests. *)
