lib/util/numerics.mli:
