lib/util/pqueue.mli:
