lib/util/rng.mli:
