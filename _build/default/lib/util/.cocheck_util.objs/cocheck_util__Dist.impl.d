lib/util/dist.ml: Float Rng
