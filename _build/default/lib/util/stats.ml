type running = { mutable n : int; mutable mu : float; mutable m2 : float }

let running_create () = { n = 0; mu = 0.0; m2 = 0.0 }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.mu in
  r.mu <- r.mu +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.mu))

let running_count r = r.n
let running_mean r = if r.n = 0 then nan else r.mu
let running_variance r = if r.n < 2 then nan else r.m2 /. float_of_int (r.n - 1)
let running_stddev r = sqrt (running_variance r)

let mean xs =
  let r = running_create () in
  Array.iter (running_add r) xs;
  running_mean r

let variance xs =
  let r = running_create () in
  Array.iter (running_add r) xs;
  running_variance r

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor h) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = h -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

type candlestick = {
  mean : float;
  d1 : float;
  q1 : float;
  median : float;
  q3 : float;
  d9 : float;
  n : int;
}

let candlestick xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.candlestick: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let q p =
    if n = 1 then sorted.(0)
    else begin
      let h = p *. float_of_int (n - 1) in
      let i = min (n - 2) (int_of_float (Float.floor h)) in
      let frac = h -. float_of_int i in
      sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
    end
  in
  {
    mean = mean xs;
    d1 = q 0.1;
    q1 = q 0.25;
    median = q 0.5;
    q3 = q 0.75;
    d9 = q 0.9;
    n;
  }

let pp_candlestick ppf c =
  Format.fprintf ppf "mean=%.4f d1=%.4f q1=%.4f med=%.4f q3=%.4f d9=%.4f (n=%d)"
    c.mean c.d1 c.q1 c.median c.q3 c.d9 c.n

let z_of_confidence = function
  | 0.90 -> 1.6449
  | 0.95 -> 1.9600
  | 0.99 -> 2.5758
  | c -> invalid_arg (Printf.sprintf "Stats.mean_ci: unsupported confidence %g" c)

let mean_ci ?(confidence = 0.95) xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.mean_ci: need at least two samples";
  let z = z_of_confidence confidence in
  let m = mean xs and s = stddev xs in
  (m, z *. s /. sqrt (float_of_int n))

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then { lo = 0.0; hi = 1.0; counts = Array.make bins 0 }
  else begin
    let lo = Array.fold_left min xs.(0) xs in
    let hi = Array.fold_left max xs.(0) xs in
    let counts = Array.make bins 0 in
    let width = if hi > lo then hi -. lo else 1.0 in
    let bucket x =
      let b = int_of_float (float_of_int bins *. (x -. lo) /. width) in
      if b >= bins then bins - 1 else if b < 0 then 0 else b
    in
    Array.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
    { lo; hi; counts }
  end
