(** Minimal multi-series ASCII line charts.

    The paper's figures are line plots (waste ratio vs bandwidth, vs MTBF,
    required bandwidth vs MTBF). The container has no plotting stack, so
    this renders the same series on a character grid — enough to eyeball the
    crossovers and orderings the reproduction must preserve. *)

type series = { label : string; points : (float * float) list }

type config = {
  width : int;        (** plot area width in characters *)
  height : int;       (** plot area height in characters *)
  log_x : bool;       (** logarithmic x axis (Figure 2 uses one) *)
  x_label : string;
  y_label : string;
  title : string;
}

val default_config : config

val render : ?config:config -> series list -> string
(** Render the series on one grid. Each series gets a distinct marker
    character; a legend maps markers to labels. Points with non-finite
    coordinates are skipped. An empty series list yields a title-only
    stub. *)
