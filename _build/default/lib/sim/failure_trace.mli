(** Synthetic node-failure traces.

    The paper's evaluation uses exponentially distributed failures: each of
    the [nodes] nodes fails independently with mean [node_mtbf_s], so the
    platform-level process is Poisson with rate [nodes / node_mtbf_s] and a
    uniformly random struck node — which is exactly how the trace is
    generated. Failed nodes are replaced by hot spares immediately (the
    paper's convention), so the rate never decays.

    Beyond the paper, the trace generator supports non-memoryless
    inter-arrival distributions (field studies report Weibull with shape
    below 1, i.e. temporal clustering — see Tiwari et al., "Lazy
    checkpointing", DSN'14). These are mean-matched: whatever the shape,
    the mean platform inter-arrival time stays [node_mtbf_s / nodes], so
    strategies face the same failure {e count} but different {e timing}. *)

type distribution =
  | Exponential  (** the paper's model: memoryless *)
  | Weibull of { shape : float }
      (** shape < 1 clusters failures (infant mortality / correlation);
          shape > 1 spaces them out (wear-out). Requires [shape > 0]. *)
  | Lognormal of { sigma : float }
      (** heavy-tailed quiet periods with bursts; [sigma >= 0]. *)

val distribution_name : distribution -> string

type t

type event = { time : float; node : int }

val create :
  rng:Cocheck_util.Rng.t ->
  nodes:int ->
  node_mtbf_s:float ->
  ?distribution:distribution ->
  unit ->
  t
(** The trace draws lazily from [rng]; clock starts at 0. [distribution]
    defaults to [Exponential]. *)

val next : t -> event
(** Generate the next failure (strictly increasing times). *)

val peek_time : t -> float
(** Time of the failure {!next} would return, without consuming it. *)

val generated : t -> int
(** Number of events drawn so far. *)

val system_mtbf : t -> float
(** [node_mtbf_s / nodes]: the mean inter-arrival time, whatever the
    distribution. *)
