(** Node-second accounting over a measurement segment.

    Every enrolled node-second of a simulation is classified as exactly one
    {!kind}; the waste ratio of Section 6 is the wasted node-seconds within
    the segment divided by the baseline run's useful node-seconds in the
    same segment. Intervals are clipped to the segment on entry, so the
    ledger is a handful of counters, not a trace. *)

type kind =
  | Work  (** useful, eventually-committed computation — progress *)
  | Regular_io
      (** regular (non-CR) input/output transferred at nominal full
          bandwidth — progress *)
  | Io_dilation
      (** the part of a regular transfer lost to interference or queueing
          (actual minus nominal duration) — waste *)
  | Ckpt_io  (** global checkpoint commits — waste *)
  | Local_ckpt  (** node-local (two-level) snapshot pauses — waste *)
  | Wait  (** idle, blocked on the I/O token — waste *)
  | Recovery_io  (** restart reads after a failure — waste *)
  | Lost_work  (** computation rolled back by a failure — waste *)

val all_kinds : kind list
val kind_name : kind -> string
val is_progress : kind -> bool

type t

val create : seg_start:float -> seg_end:float -> t
(** Requires [seg_start <= seg_end]. *)

val segment : t -> float * float

val record : t -> t0:float -> t1:float -> nodes:int -> kind -> unit
(** Accumulate [(t1 − t0) × nodes] node-seconds of [kind], clipped to the
    segment. Requires [t0 <= t1] and [nodes >= 0]. *)

val record_weighted : t -> t0:float -> t1:float -> nodes:int -> fraction:float -> progress:kind -> waste:kind -> unit
(** Split an interval between a progress kind and a waste kind: [fraction]
    (in [\[0,1\]]) of the node-seconds go to [progress], the rest to
    [waste]. Used for bandwidth-shared transfers where the nominal-rate part
    counts as progress. *)

val record_enrolled : t -> t0:float -> t1:float -> nodes:int -> unit
(** Track total enrolled node-seconds (for conservation checks). *)

val total : t -> kind -> float
val progress_ns : t -> float
val waste_ns : t -> float
val enrolled_ns : t -> float

val by_kind : t -> (kind * float) list
(** All kinds in {!all_kinds} order. *)

val pp : Format.formatter -> t -> unit
