lib/sim/simulator.mli: Cocheck_model Config Metrics Trace
