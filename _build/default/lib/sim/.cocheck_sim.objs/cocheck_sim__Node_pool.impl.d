lib/sim/node_pool.ml: Array
