lib/sim/node_pool.mli:
