lib/sim/simulator.ml: Array Burst_buffer Cocheck_core Cocheck_des Cocheck_model Cocheck_util Config Failure_trace Float Hashtbl Io_subsystem Lazy List Metrics Node_pool Option Queue Rng Stats Trace
