lib/sim/failure_trace.ml: Cocheck_util Dist Float Numerics Printf Rng
