lib/sim/config.ml: Apex App_class Burst_buffer Cocheck_core Cocheck_model Cocheck_util Failure_trace Option Platform
