lib/sim/burst_buffer.ml: Hashtbl Io_subsystem List Queue
