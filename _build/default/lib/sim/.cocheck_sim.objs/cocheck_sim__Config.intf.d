lib/sim/config.mli: Burst_buffer Cocheck_core Cocheck_model Failure_trace
