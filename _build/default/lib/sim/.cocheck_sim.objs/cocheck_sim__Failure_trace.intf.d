lib/sim/failure_trace.mli: Cocheck_util
