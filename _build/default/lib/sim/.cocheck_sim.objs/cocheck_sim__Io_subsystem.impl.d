lib/sim/io_subsystem.ml: Cocheck_des Float List Metrics
