lib/sim/burst_buffer.mli: Cocheck_des Io_subsystem Metrics
