lib/sim/io_subsystem.mli: Cocheck_des Metrics
