type t = {
  owners : int array;  (* -1 = free *)
  free_stack : int array;
  mutable free_top : int;  (* number of free nodes; stack grows downward from 0 *)
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Node_pool.create: nodes must be positive";
  {
    owners = Array.make nodes (-1);
    free_stack = Array.init nodes (fun i -> i);
    free_top = nodes;
  }

let total t = Array.length t.owners
let free_count t = t.free_top
let used_count t = total t - t.free_top

let alloc t ~job ~count =
  if count <= 0 then invalid_arg "Node_pool.alloc: count must be positive";
  if job < 0 then invalid_arg "Node_pool.alloc: negative job id";
  if count > t.free_top then None
  else begin
    let ids = Array.make count 0 in
    for i = 0 to count - 1 do
      t.free_top <- t.free_top - 1;
      let node = t.free_stack.(t.free_top) in
      ids.(i) <- node;
      t.owners.(node) <- job
    done;
    Some ids
  end

let release t ids =
  Array.iter
    (fun node ->
      if node < 0 || node >= total t then invalid_arg "Node_pool.release: bad node id";
      if t.owners.(node) = -1 then invalid_arg "Node_pool.release: node already free";
      t.owners.(node) <- -1;
      t.free_stack.(t.free_top) <- node;
      t.free_top <- t.free_top + 1)
    ids

let owner t node =
  if node < 0 || node >= total t then invalid_arg "Node_pool.owner: bad node id";
  let o = t.owners.(node) in
  if o = -1 then None else Some o
