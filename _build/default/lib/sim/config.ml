open Cocheck_model

type t = {
  platform : Platform.t;
  classes : App_class.t list;
  strategy : Cocheck_core.Strategy.t;
  seed : int;
  min_duration_s : float;
  seg_start : float;
  seg_end : float;
  horizon : float;
  fill_factor : float;
  with_failures : bool;
  failure_dist : Failure_trace.distribution;
  interference_alpha : float;
  burst_buffer : Burst_buffer.spec option;
  multilevel : multilevel option;
}

and multilevel = {
  local_period_s : float;
  local_cost_s : float;
  local_recovery_s : float;
  soft_fraction : float;
}

let validate t =
  if t.classes = [] then invalid_arg "Config: no application classes";
  if t.seg_start < 0.0 || t.seg_start > t.seg_end then invalid_arg "Config: bad segment";
  if t.horizon < t.seg_end then invalid_arg "Config: horizon before segment end";
  if t.min_duration_s <= 0.0 then invalid_arg "Config: non-positive duration";
  if t.fill_factor < 1.0 then invalid_arg "Config: fill factor below 1";
  if t.interference_alpha < 0.0 then invalid_arg "Config: negative interference alpha";
  Option.iter Burst_buffer.spec_validate t.burst_buffer;
  Option.iter
    (fun m ->
      if m.local_period_s <= 0.0 then invalid_arg "Config: local period must be positive";
      if m.local_cost_s < 0.0 || m.local_recovery_s < 0.0 then
        invalid_arg "Config: negative local checkpoint cost";
      if m.soft_fraction < 0.0 || m.soft_fraction > 1.0 then
        invalid_arg "Config: soft fraction outside [0, 1]")
    t.multilevel

let make ~platform ?classes ~strategy ?(seed = 42) ?(days = 60.0) ?(fill_factor = 1.15)
    ?(with_failures = true) ?(failure_dist = Failure_trace.Exponential)
    ?(interference_alpha = 0.0) ?burst_buffer ?multilevel () =
  let day = Cocheck_util.Units.day in
  let classes =
    match classes with
    | Some cs -> cs
    | None ->
        if platform.Platform.name = "Cielo" then Apex.lanl_workload
        else Apex.scaled_workload ~target:platform
  in
  let with_failures =
    match strategy with Cocheck_core.Strategy.Baseline -> false | _ -> with_failures
  in
  let t =
    {
      platform;
      classes;
      strategy;
      seed;
      min_duration_s = (days +. 2.0) *. day;
      seg_start = 1.0 *. day;
      seg_end = (days +. 1.0) *. day;
      horizon = (days +. 2.0) *. day;
      fill_factor;
      with_failures;
      failure_dist;
      interference_alpha;
      burst_buffer;
      multilevel;
    }
  in
  validate t;
  t

let baseline_of t =
  { t with strategy = Cocheck_core.Strategy.Baseline; with_failures = false }
