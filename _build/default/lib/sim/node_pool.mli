(** Space-shared node allocation with per-node ownership, so failure events
    (which strike a uniformly random node) can be mapped to the job running
    there. *)

type t

val create : nodes:int -> t
val total : t -> int
val free_count : t -> int
val used_count : t -> int

val alloc : t -> job:int -> count:int -> int array option
(** Allocate [count] nodes to [job]; [None] when not enough are free.
    Returned ids are the allocated nodes. Requires [count > 0]. *)

val release : t -> int array -> unit
(** Free previously allocated nodes. Raises [Invalid_argument] when a node
    is already free (double release). *)

val owner : t -> int -> int option
(** The job occupying a node, if any. *)
