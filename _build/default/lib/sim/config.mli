(** Scenario configuration for one simulation run. *)

type t = {
  platform : Cocheck_model.Platform.t;
  classes : Cocheck_model.App_class.t list;
  strategy : Cocheck_core.Strategy.t;
  seed : int;  (** root seed; jobs and failures draw from substreams *)
  min_duration_s : float;  (** workload span to generate (Section 5: 60 days + margins) *)
  seg_start : float;  (** measurement segment start (paper: after day 1) *)
  seg_end : float;  (** measurement segment end *)
  horizon : float;  (** hard simulation stop *)
  fill_factor : float;  (** workload node-second oversubscription, see {!Cocheck_model.Jobgen} *)
  with_failures : bool;
  failure_dist : Failure_trace.distribution;
      (** inter-arrival law for failures; the paper uses {!Failure_trace.Exponential} *)
  interference_alpha : float;
      (** 0 gives the paper's linear interference; larger values erode the
          aggregate bandwidth under contention (footnote 2's adversarial
          model), see {!Io_subsystem} *)
  burst_buffer : Burst_buffer.spec option;
      (** when set, checkpoints that fit commit to a burst buffer and drain
          to the PFS in the background (the Section 8 extension) *)
  multilevel : multilevel option;
      (** when set, jobs additionally take cheap node-local checkpoints
          that survive {e soft} failures (SCR/FTI-style two-level
          checkpointing, references [9][15]; see
          {!Cocheck_core.Two_level} for the analytic model) *)
}

and multilevel = {
  local_period_s : float;  (** time between local snapshots *)
  local_cost_s : float;  (** compute pause per snapshot, no PFS traffic *)
  local_recovery_s : float;  (** restart delay after a soft failure *)
  soft_fraction : float;
      (** probability a failure is soft (recoverable from node-local
          state); the remainder are node losses recovering from the PFS *)
}

val make :
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  strategy:Cocheck_core.Strategy.t ->
  ?seed:int ->
  ?days:float ->
  ?fill_factor:float ->
  ?with_failures:bool ->
  ?failure_dist:Failure_trace.distribution ->
  ?interference_alpha:float ->
  ?burst_buffer:Burst_buffer.spec ->
  ?multilevel:multilevel ->
  unit ->
  t
(** Build a paper-style configuration: a [days]-long measurement segment
    (default 60) preceded and followed by one excluded day, so
    [min_duration_s = days + 2] days, [seg_start = 1] day,
    [seg_end = days + 1] days, [horizon = days + 2] days. [classes]
    defaults to the APEX LANL workload scaled to the platform.
    The Baseline strategy forces [with_failures = false]. *)

val baseline_of : t -> t
(** The same scenario under the Baseline strategy (no failures, no
    checkpoints, no interference) — the waste-ratio denominator run. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent segments/horizons. *)
