type kind =
  | Job_started of { restarts : int; nodes : int }
  | Input_done
  | Ckpt_requested
  | Ckpt_started
  | Ckpt_committed of { work : float }
  | Ckpt_aborted
  | Token_granted
  | Work_completed
  | Job_completed
  | Job_killed of { lost_work : float }
  | Node_failure of { node : int }

type event = { time : float; job : int; inst : int; kind : kind }

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* ring write position *)
  mutable total : int;  (* events ever recorded *)
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; next = 0; total = 0 }

let record t event =
  t.buffer.(t.next) <- Some event;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let events t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let for_job t ~job = List.filter (fun e -> e.job = job) (events t)
let of_kind t ~f = List.filter (fun e -> f e.kind) (events t)

let kind_name = function
  | Job_started _ -> "job-started"
  | Input_done -> "input-done"
  | Ckpt_requested -> "ckpt-requested"
  | Ckpt_started -> "ckpt-started"
  | Ckpt_committed _ -> "ckpt-committed"
  | Ckpt_aborted -> "ckpt-aborted"
  | Token_granted -> "token-granted"
  | Work_completed -> "work-completed"
  | Job_completed -> "job-completed"
  | Job_killed _ -> "job-killed"
  | Node_failure _ -> "node-failure"

let pp_event ppf e =
  Format.fprintf ppf "%12.1f job=%-4d inst=%-5d %s" e.time e.job e.inst (kind_name e.kind);
  match e.kind with
  | Job_started { restarts; nodes } ->
      Format.fprintf ppf " (%d nodes%s)" nodes
        (if restarts > 0 then Printf.sprintf ", restart #%d" restarts else "")
  | Ckpt_committed { work } -> Format.fprintf ppf " (work %.0f s)" work
  | Job_killed { lost_work } -> Format.fprintf ppf " (lost %.0f s)" lost_work
  | Node_failure { node } -> Format.fprintf ppf " (node %d)" node
  | Input_done | Ckpt_requested | Ckpt_started | Ckpt_aborted | Token_granted
  | Work_completed | Job_completed ->
      ()

let dump ?limit t =
  let evs = events t in
  let evs = match limit with Some n -> List.filteri (fun i _ -> i < n) evs | None -> evs in
  let buf = Buffer.create 4096 in
  if dropped t > 0 then
    Buffer.add_string buf (Printf.sprintf "(%d earlier events dropped)\n" (dropped t));
  List.iter (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_event e)) evs;
  Buffer.contents buf
