open Cocheck_util
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Platform = Cocheck_model.Platform
module Daly = Cocheck_core.Daly
module Waste = Cocheck_core.Waste

let workload = Apex.table1

let derived ?(platform = Platform.cielo ()) () =
  let t =
    Table.create
      ~headers:
        [
          "Workflow";
          "Nodes";
          "Memory";
          "Ckpt size";
          "C_i (s)";
          "MTBF_i (h)";
          "Daly period (h)";
          "n_i (steady)";
        ]
  in
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform in
  List.iter
    (fun (n, (c : App_class.t)) ->
      Table.add_row t
        [
          c.name;
          string_of_int c.nodes;
          Format.asprintf "%a" Units.pp_bytes (App_class.memory_gb c ~platform);
          Format.asprintf "%a" Units.pp_bytes (App_class.ckpt_gb c ~platform);
          Printf.sprintf "%.0f" (App_class.ckpt_time c ~platform);
          Printf.sprintf "%.2f" (Units.to_hours (App_class.mtbf c ~platform));
          Printf.sprintf "%.2f" (Units.to_hours (Daly.period_for c ~platform));
          Printf.sprintf "%.2f" n;
        ])
    counts;
  t

let render ?platform () =
  String.concat "\n"
    [
      "Table 1 — LANL workflow workload (APEX Workflows report):";
      Table.render workload;
      "Derived checkpointing parameters:";
      Table.render (derived ?platform ());
    ]
