open Cocheck_util
module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator

type measurement = {
  strategy : Strategy.t;
  ratios : float array;
  stats : Stats.candlestick;
}

(* A large odd multiplier spreads replication seeds far apart in the
   SplitMix expansion space. *)
let rep_seed ~seed ~rep = seed + (1_000_003 * rep)

let one_rep ~platform ~classes ~strategies ~days ~seed ~failure_dist
    ~interference_alpha ~burst_buffer ~multilevel rep =
  let cfg strategy =
    Config.make ~platform ?classes ~strategy ~seed:(rep_seed ~seed ~rep) ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ()
  in
  let baseline_cfg = cfg Strategy.Baseline in
  let specs = Simulator.generate_specs baseline_cfg in
  let baseline = Simulator.run ~specs baseline_cfg in
  List.map
    (fun strategy ->
      let r = Simulator.run ~specs (cfg strategy) in
      Simulator.waste_ratio ~strategy:r ~baseline)
    strategies

let measure ~pool ~platform ?classes ~strategies ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel () =
  if reps <= 0 then invalid_arg "Montecarlo.measure: reps must be positive";
  let rows =
    Pool.init_array pool reps
      (one_rep ~platform ~classes ~strategies ~days ~seed ~failure_dist
         ~interference_alpha ~burst_buffer ~multilevel)
  in
  List.mapi
    (fun i strategy ->
      let ratios = Array.map (fun row -> List.nth row i) rows in
      { strategy; ratios; stats = Stats.candlestick ratios })
    strategies

let mean_waste ~pool ~platform ?classes ~strategy ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel () =
  match
    measure ~pool ~platform ?classes ~strategies:[ strategy ] ~reps ~seed ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ()
  with
  | [ m ] -> m.stats.Stats.mean
  | _ -> assert false
