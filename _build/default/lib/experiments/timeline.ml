module Trace = Cocheck_sim.Trace

type bucket = {
  t0 : float;
  t1 : float;
  mean_nodes_busy : float;
  starts : int;
  kills : int;
  completions : int;
}

type t = { total_nodes : int; buckets : bucket list }

let build ~trace ~total_nodes ~horizon ?(buckets = 60) () =
  if buckets <= 0 then invalid_arg "Timeline.build: buckets must be positive";
  if horizon <= 0.0 then invalid_arg "Timeline.build: horizon must be positive";
  let width = horizon /. float_of_int buckets in
  let busy_ns = Array.make buckets 0.0 in
  let starts = Array.make buckets 0 in
  let kills = Array.make buckets 0 in
  let completions = Array.make buckets 0 in
  let bucket_of time = min (buckets - 1) (max 0 (int_of_float (time /. width))) in
  (* Accumulate [active] nodes over [t0, t1), split across buckets. *)
  let accumulate ~t0 ~t1 ~active =
    if active > 0 && t1 > t0 then begin
      let t1 = Float.min t1 horizon in
      let rec go t =
        if t < t1 then begin
          let b = bucket_of t in
          let edge = Float.min t1 (width *. float_of_int (b + 1)) in
          busy_ns.(b) <- busy_ns.(b) +. (float_of_int active *. (edge -. t));
          go edge
        end
      in
      go (Float.max 0.0 t0)
    end
  in
  let inst_nodes = Hashtbl.create 64 in
  let active = ref 0 in
  let cursor = ref 0.0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Job_started { nodes; _ } ->
          accumulate ~t0:!cursor ~t1:e.time ~active:!active;
          cursor := e.time;
          Hashtbl.replace inst_nodes e.inst nodes;
          active := !active + nodes;
          starts.(bucket_of e.time) <- starts.(bucket_of e.time) + 1
      | Trace.Job_completed | Trace.Job_killed _ -> (
          accumulate ~t0:!cursor ~t1:e.time ~active:!active;
          cursor := e.time;
          (match e.kind with
          | Trace.Job_killed _ -> kills.(bucket_of e.time) <- kills.(bucket_of e.time) + 1
          | _ ->
              completions.(bucket_of e.time) <- completions.(bucket_of e.time) + 1);
          match Hashtbl.find_opt inst_nodes e.inst with
          | Some nodes ->
              active := !active - nodes;
              Hashtbl.remove inst_nodes e.inst
          | None -> () (* start event evicted; under-counts conservatively *))
      | _ -> ())
    (Trace.events trace);
  accumulate ~t0:!cursor ~t1:horizon ~active:!active;
  {
    total_nodes;
    buckets =
      List.init buckets (fun i ->
          {
            t0 = width *. float_of_int i;
            t1 = width *. float_of_int (i + 1);
            mean_nodes_busy = busy_ns.(i) /. width;
            starts = starts.(i);
            kills = kills.(i);
            completions = completions.(i);
          });
  }

let mean_utilization t =
  let total =
    Cocheck_util.Numerics.sum_by (fun b -> b.mean_nodes_busy) t.buckets
  in
  total /. float_of_int (List.length t.buckets) /. float_of_int t.total_nodes

let render t =
  let buf = Buffer.create 4096 in
  let bar_width = 50 in
  Buffer.add_string buf
    (Printf.sprintf "utilization over time (%d nodes, mean %.1f%%)\n" t.total_nodes
       (100.0 *. mean_utilization t));
  List.iter
    (fun b ->
      let frac = b.mean_nodes_busy /. float_of_int t.total_nodes in
      let filled = int_of_float (Float.round (frac *. float_of_int bar_width)) in
      let filled = max 0 (min bar_width filled) in
      Buffer.add_string buf
        (Printf.sprintf "%8.2fd |%s%s| %5.1f%%%s\n"
           (b.t0 /. Cocheck_util.Units.day)
           (String.make filled '#')
           (String.make (bar_width - filled) ' ')
           (100.0 *. frac)
           (if b.kills > 0 then Printf.sprintf "  x%d" b.kills else "")))
    t.buckets;
  Buffer.contents buf
