(** Table 1: the LANL APEX workload characteristics, plus the derived
    per-class checkpointing parameters the simulation runs on (checkpoint
    volume, commit time and Daly period on Cielo). *)

val workload : Cocheck_util.Table.t
(** Table 1 verbatim. *)

val derived : ?platform:Cocheck_model.Platform.t -> unit -> Cocheck_util.Table.t
(** Per-class derived quantities on the given platform (default Cielo at
    160 GB/s): memory footprint, checkpoint size, C_i, µ_i, Daly period and
    steady-state concurrent job count. *)

val render : ?platform:Cocheck_model.Platform.t -> unit -> string
