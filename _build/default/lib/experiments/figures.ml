open Cocheck_util

type point = { x : float; value : float; stats : Stats.candlestick option }
type series = { label : string; points : point list }

type t = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  log_x : bool;
  series : series list;
}

let sim_point ~x (stats : Stats.candlestick) = { x; value = stats.Stats.mean; stats = Some stats }
let analytic_point ~x value = { x; value; stats = None }

let xs_of t =
  let all = List.concat_map (fun s -> List.map (fun p -> p.x) s.points) t.series in
  List.sort_uniq compare all

let to_table t =
  let headers = t.x_label :: List.map (fun s -> s.label) t.series in
  let table = Table.create ~headers in
  List.iter
    (fun x ->
      let cell s =
        match List.find_opt (fun p -> p.x = x) s.points with
        | None -> "-"
        | Some { stats = Some c; _ } ->
            Printf.sprintf "%.3f [%.3f-%.3f]" c.Stats.mean c.Stats.d1 c.Stats.d9
        | Some { value; _ } -> Printf.sprintf "%.3f" value
      in
      Table.add_row table (Printf.sprintf "%g" x :: List.map cell t.series))
    (xs_of t);
  table

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,x,mean,d1,q1,median,q3,d9,n\n";
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          match p.stats with
          | Some c ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%g,%g,%g,%g,%g,%g,%g,%d\n" s.label p.x c.Stats.mean
                   c.Stats.d1 c.Stats.q1 c.Stats.median c.Stats.q3 c.Stats.d9 c.Stats.n)
          | None ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%g,%g,,,,,,\n" s.label p.x p.value))
        s.points)
    t.series;
  Buffer.contents buf

let render ?(plot_height = 18) t =
  let plot_series =
    List.map
      (fun s ->
        {
          Ascii_plot.label = s.label;
          points = List.map (fun p -> (p.x, p.value)) s.points;
        })
      t.series
  in
  let config =
    {
      Ascii_plot.default_config with
      title = Printf.sprintf "%s — %s" (String.uppercase_ascii t.id) t.title;
      x_label = t.x_label;
      y_label = t.y_label;
      log_x = t.log_x;
      height = plot_height;
    }
  in
  String.concat "\n"
    [
      Table.render (to_table t);
      Ascii_plot.render ~config plot_series;
    ]

let series_value_at t ~label ~x =
  List.find_opt (fun s -> s.label = label) t.series
  |> Fun.flip Option.bind (fun s ->
         List.find_opt (fun p -> p.x = x) s.points |> Option.map (fun p -> p.value))
