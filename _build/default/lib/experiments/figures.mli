(** Shared result shapes and rendering for the paper's figures.

    A figure is a set of series over a swept parameter; every simulated
    point carries its Monte Carlo candlestick, analytic points (the
    theoretical-model curve) carry only a value. *)

type point = { x : float; value : float; stats : Cocheck_util.Stats.candlestick option }

type series = { label : string; points : point list }

type t = {
  id : string;  (** e.g. "fig1" *)
  title : string;
  x_label : string;
  y_label : string;
  log_x : bool;
  series : series list;
}

val sim_point : x:float -> Cocheck_util.Stats.candlestick -> point
val analytic_point : x:float -> float -> point

val to_table : t -> Cocheck_util.Table.t
(** One row per x value, one column per series (mean, with [d1–d9] range
    for simulated points). *)

val to_csv : t -> string
(** Long-format CSV: [series,x,mean,d1,q1,median,q3,d9,n]. *)

val render : ?plot_height:int -> t -> string
(** Table plus ASCII chart plus caption. *)

val series_value_at : t -> label:string -> x:float -> float option
(** Mean value of a series at a swept point (tests and crossover checks). *)
