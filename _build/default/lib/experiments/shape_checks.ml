module Strategy = Cocheck_core.Strategy
module Platform = Cocheck_model.Platform

type check = { id : string; claim : string; passed : bool; detail : string }

let oblivious_fixed = Strategy.Oblivious (Strategy.Fixed Strategy.default_fixed_period_s)
let ordered_fixed = Strategy.Ordered (Strategy.Fixed Strategy.default_fixed_period_s)

let measure_map ~pool ~platform ~reps ~seed ~days =
  let ms =
    Montecarlo.measure ~pool ~platform ~strategies:Strategy.paper_seven ~reps ~seed ~days
      ()
  in
  fun strategy ->
    (List.find (fun m -> m.Montecarlo.strategy = strategy) ms).Montecarlo.stats
      .Cocheck_util.Stats.mean

let run ~pool ?(reps = 8) ?(seed = 42) ?(days = 15.0) () =
  let checks = ref [] in
  let add id claim passed detail = checks := { id; claim; passed; detail } :: !checks in

  (* --- Figure 1 regime: Cielo, node MTBF 2 years ------------------- *)
  let cielo b = Platform.cielo ~bandwidth_gbs:b ~node_mtbf_years:2.0 () in
  let at40 = measure_map ~pool ~platform:(cielo 40.0) ~reps ~seed ~days in
  let at160 = measure_map ~pool ~platform:(cielo 160.0) ~reps ~seed ~days in
  let bound40 = Sweep.theoretical_waste ~platform:(cielo 40.0) () in
  let bound160 = Sweep.theoretical_waste ~platform:(cielo 160.0) () in

  let w_of_fixed = at40 oblivious_fixed and w_ordered_fixed = at40 ordered_fixed in
  add "fig1-fixed-saturated"
    "At scarce bandwidth (40 GB/s) the blocking Fixed strategies are dominated by \
     checkpoint traffic (waste well above the cooperative strategies)"
    (w_of_fixed > 0.6 && w_ordered_fixed > 0.6)
    (Printf.sprintf "Oblivious-Fixed %.3f, Ordered-Fixed %.3f" w_of_fixed w_ordered_fixed);

  let w_lw40 = at40 Strategy.Least_waste in
  let w_nb40 = at40 (Strategy.Ordered_nb Strategy.Daly) in
  add "fig1-cooperative-near-bound"
    "The cooperative non-blocking strategies sit near the Theorem 1 bound even at \
     40 GB/s"
    (w_lw40 <= bound40 +. 0.15 && w_nb40 <= bound40 +. 0.15)
    (Printf.sprintf "LW %.3f, NB-Daly %.3f vs bound %.3f" w_lw40 w_nb40 bound40);

  add "fig1-lw-wins"
    "Least-Waste is the most efficient strategy at scarce bandwidth"
    (List.for_all
       (fun s -> w_lw40 <= at40 s +. 0.03)
       Strategy.paper_seven)
    (Printf.sprintf "LW %.3f vs best other %.3f" w_lw40
       (List.fold_left
          (fun acc s -> if s = Strategy.Least_waste then acc else Float.min acc (at40 s))
          infinity Strategy.paper_seven));

  let w_of160 = at160 oblivious_fixed and w_lw160 = at160 Strategy.Least_waste in
  add "fig1-fixed-stays-high"
    "Even at the full 160 GB/s, the fixed-period blocking strategies keep a large \
     waste gap over Least-Waste"
    (w_of160 > 1.3 *. w_lw160)
    (Printf.sprintf "Oblivious-Fixed %.3f vs LW %.3f (%.2fx)" w_of160 w_lw160
       (w_of160 /. w_lw160));

  let improves s =
    let a = at40 s and b = at160 s in
    b < a
  in
  add "fig1-bandwidth-helps-daly"
    "All Daly-period strategies improve monotonically from 40 to 160 GB/s"
    (List.for_all improves
       [ Strategy.Oblivious Strategy.Daly; Strategy.Ordered Strategy.Daly;
         Strategy.Ordered_nb Strategy.Daly; Strategy.Least_waste ])
    (Printf.sprintf "e.g. Oblivious-Daly %.3f -> %.3f"
       (at40 (Strategy.Oblivious Strategy.Daly))
       (at160 (Strategy.Oblivious Strategy.Daly)));

  add "fig1-nb-reaches-theory-at-160"
    "At 160 GB/s the non-blocking strategies reach the theoretical model"
    (at160 (Strategy.Ordered_nb Strategy.Daly) <= bound160 +. 0.08
    && w_lw160 <= bound160 +. 0.08)
    (Printf.sprintf "NB-Daly %.3f, LW %.3f vs bound %.3f"
       (at160 (Strategy.Ordered_nb Strategy.Daly))
       w_lw160 bound160);

  (* --- Figure 2 regime: Cielo at 40 GB/s, varying MTBF -------------- *)
  let cielo_mtbf y = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:y () in
  let at50y = measure_map ~pool ~platform:(cielo_mtbf 50.0) ~reps ~seed ~days in
  let at5y = measure_map ~pool ~platform:(cielo_mtbf 5.0) ~reps ~seed ~days in
  let bound5 = Sweep.theoretical_waste ~platform:(cielo_mtbf 5.0) () in

  add "fig2-fixed-flat"
    "The blocking Fixed strategies stay saturated (~80 % waste) however reliable the \
     nodes get: the I/O subsystem, not the failures, is their bottleneck"
    (at50y oblivious_fixed > 0.6 && at50y ordered_fixed > 0.6)
    (Printf.sprintf "at 50y: Oblivious-Fixed %.3f, Ordered-Fixed %.3f"
       (at50y oblivious_fixed) (at50y ordered_fixed));

  add "fig2-daly-improves-with-mtbf"
    "The blocking Daly strategies improve steadily with MTBF and approach the bound \
     at 50-year node MTBF"
    (at50y (Strategy.Ordered Strategy.Daly) < 0.5 *. at40 (Strategy.Ordered Strategy.Daly))
    (Printf.sprintf "Ordered-Daly: %.3f at 2y -> %.3f at 50y"
       (at40 (Strategy.Ordered Strategy.Daly))
       (at50y (Strategy.Ordered Strategy.Daly)));

  add "fig2-nb-converges-fast"
    "The non-blocking strategies already reach the theoretical model at modest MTBF \
     (~5-year node MTBF)"
    (at5y (Strategy.Ordered_nb Strategy.Daly) <= bound5 +. 0.08
    && at5y Strategy.Least_waste <= bound5 +. 0.08)
    (Printf.sprintf "at 5y: NB-Daly %.3f, LW %.3f vs bound %.3f"
       (at5y (Strategy.Ordered_nb Strategy.Daly))
       (at5y Strategy.Least_waste) bound5);

  add "fig2-nb-fixed-beats-blocking-fixed"
    "Ordered-NB-Fixed, despite its fixed period, far outperforms the blocking Fixed \
     strategies (non-blocking absorbs the scheduling delays)"
    (at50y (Strategy.Ordered_nb (Strategy.Fixed Strategy.default_fixed_period_s))
    < 0.6 *. at50y oblivious_fixed)
    (Printf.sprintf "at 50y: NB-Fixed %.3f vs Oblivious-Fixed %.3f"
       (at50y (Strategy.Ordered_nb (Strategy.Fixed Strategy.default_fixed_period_s)))
       (at50y oblivious_fixed));

  (* --- Figure 3 regime: prospective system ------------------------- *)
  let minbw strategy =
    Fig3.min_bandwidth ~pool ~strategy ~node_mtbf_years:15.0 ~target_efficiency:0.8
      ~reps:(max 2 (reps / 4)) ~seed ~days:(Float.min days 12.0) ~iters:6 ()
  in
  let bw_oblivious = minbw oblivious_fixed in
  let bw_lw = minbw Strategy.Least_waste in
  let bw_theory =
    Fig3.min_bandwidth_theoretical ~node_mtbf_years:15.0 ~target_efficiency:0.8 ()
  in
  add "fig3-oblivious-needs-most"
    "On the prospective system, Oblivious-Fixed needs a large multiple of the \
     bandwidth Least-Waste needs for 80 % efficiency"
    (bw_oblivious > 1.8 *. bw_lw)
    (Printf.sprintf "Oblivious-Fixed %.2f TB/s vs LW %.2f TB/s (%.1fx)"
       (bw_oblivious /. 1000.0) (bw_lw /. 1000.0) (bw_oblivious /. bw_lw));

  add "fig3-lw-tracks-theory"
    "Least-Waste's bandwidth requirement tracks the theoretical minimum"
    (bw_lw < 2.0 *. bw_theory && bw_lw > 0.5 *. bw_theory)
    (Printf.sprintf "LW %.2f TB/s vs theory %.2f TB/s" (bw_lw /. 1000.0)
       (bw_theory /. 1000.0));

  List.rev !checks

let render checks =
  let buf = Buffer.create 2048 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %-32s %s\n        %s\n"
           (if c.passed then "PASS" else "FAIL")
           c.id c.detail c.claim))
    checks;
  let passed = List.length (List.filter (fun c -> c.passed) checks) in
  Buffer.add_string buf
    (Printf.sprintf "%d/%d shape checks passed\n" passed (List.length checks));
  Buffer.contents buf

let all_passed checks = List.for_all (fun c -> c.passed) checks
