lib/experiments/table1.mli: Cocheck_model Cocheck_util
