lib/experiments/shape_checks.mli: Cocheck_parallel
