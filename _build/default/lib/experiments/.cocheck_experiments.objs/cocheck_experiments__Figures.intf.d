lib/experiments/figures.mli: Cocheck_util
