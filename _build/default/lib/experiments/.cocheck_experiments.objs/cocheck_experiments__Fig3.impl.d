lib/experiments/fig3.ml: Cocheck_core Cocheck_model Figures List Montecarlo Printf
