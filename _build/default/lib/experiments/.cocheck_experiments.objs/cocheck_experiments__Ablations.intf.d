lib/experiments/ablations.mli: Cocheck_core Cocheck_parallel Cocheck_util
