lib/experiments/report.mli: Cocheck_parallel
