lib/experiments/fig3.mli: Cocheck_core Cocheck_model Cocheck_parallel Figures
