lib/experiments/shape_checks.ml: Buffer Cocheck_core Cocheck_model Cocheck_util Fig3 Float List Montecarlo Printf Sweep
