lib/experiments/fig2.mli: Cocheck_parallel Figures
