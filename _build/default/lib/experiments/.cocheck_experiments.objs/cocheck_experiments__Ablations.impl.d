lib/experiments/ablations.ml: Cocheck_core Cocheck_model Cocheck_parallel Cocheck_sim Cocheck_util Format Fun List Montecarlo Option Printf Stats Table Units
