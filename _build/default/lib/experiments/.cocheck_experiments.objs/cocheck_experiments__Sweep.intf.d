lib/experiments/sweep.mli: Cocheck_core Cocheck_model Cocheck_parallel Figures
