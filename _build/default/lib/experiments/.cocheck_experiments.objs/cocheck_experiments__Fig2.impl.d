lib/experiments/fig2.ml: Cocheck_model Figures List Printf Sweep
