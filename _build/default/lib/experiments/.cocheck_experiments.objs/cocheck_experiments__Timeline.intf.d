lib/experiments/timeline.mli: Cocheck_sim
