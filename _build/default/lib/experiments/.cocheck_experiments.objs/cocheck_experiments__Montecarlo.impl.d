lib/experiments/montecarlo.ml: Array Cocheck_core Cocheck_parallel Cocheck_sim Cocheck_util List Stats
