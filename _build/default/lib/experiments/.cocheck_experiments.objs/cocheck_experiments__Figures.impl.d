lib/experiments/figures.ml: Ascii_plot Buffer Cocheck_util Fun List Option Printf Stats String Table
