lib/experiments/fig1.ml: Cocheck_model Figures List Printf Sweep
