lib/experiments/sweep.ml: Cocheck_core Cocheck_model Figures List Montecarlo Option
