lib/experiments/timeline.ml: Array Buffer Cocheck_sim Cocheck_util Float Hashtbl List Printf String
