lib/experiments/table1.ml: Cocheck_core Cocheck_model Cocheck_util Format List Printf String Table Units
