lib/experiments/report.ml: Ablations Buffer Cocheck_util Fig1 Fig2 Fig3 Figures Float Format Shape_checks String Table1
