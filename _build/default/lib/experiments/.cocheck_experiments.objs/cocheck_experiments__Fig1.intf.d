lib/experiments/fig1.mli: Cocheck_parallel Figures
