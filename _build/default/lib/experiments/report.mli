(** One-shot reproduction report: runs every experiment (at configurable
    depth) and renders a self-contained markdown document — tables, ASCII
    figures, ablations and the shape-check verdicts. Powers
    [simctl report]. *)

type depth = {
  reps : int;  (** Monte Carlo replications for Figures 1–2 *)
  days : float;  (** segment length for Figures 1–2 *)
  fig3_reps : int;
  fig3_days : float;
  fig3_iters : int;
  ablation_reps : int;
  check_reps : int;
}

val quick : depth
(** Minutes-scale settings (reps 8, 15-day segments). *)

val full : depth
(** The EXPERIMENTS.md protocol (reps 40, 60-day segments) — expect a
    substantial fraction of an hour on one core. *)

val generate : pool:Cocheck_parallel.Pool.t -> ?depth:depth -> ?seed:int -> unit -> string
(** The markdown report. Progress notes go to [stderr]. *)
