(** The paper's qualitative claims as executable assertions.

    Absolute waste numbers depend on the substrate (the authors ran a
    custom C simulator; we run this one), but the {e shape} of the results
    — which strategy wins, by roughly what factor, where behaviours
    cross — must hold for the reproduction to be faithful. This module
    runs a reduced Monte Carlo of the relevant scenarios and checks each
    claim from Section 6, reporting pass/fail with the measured numbers.

    Used by [simctl check] and by the test suite. *)

type check = {
  id : string;
  claim : string;  (** the paper's statement being verified *)
  passed : bool;
  detail : string;  (** measured numbers backing the verdict *)
}

val run :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  unit ->
  check list
(** Defaults: 8 replications, 15-day segments — a couple of minutes.
    Raising [reps]/[days] tightens the Monte Carlo noise the tolerances
    absorb. *)

val render : check list -> string
val all_passed : check list -> bool
