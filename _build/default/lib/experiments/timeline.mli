(** Platform-utilization timelines reconstructed from a simulation trace.

    Buckets the simulated time axis and, from [Job_started] /
    [Job_completed] / [Job_killed] events, reconstructs how many nodes were
    enrolled in each bucket — the visual form of the Section 2 requirement
    that at least 98 % of the nodes stay enrolled, and a quick way to see
    failure-induced dips and drain effects at the workload edges. *)

type bucket = {
  t0 : float;
  t1 : float;
  mean_nodes_busy : float;
  starts : int;  (** job instances started in the bucket *)
  kills : int;  (** failure kills in the bucket *)
  completions : int;
}

type t = { total_nodes : int; buckets : bucket list }

val build : trace:Cocheck_sim.Trace.t -> total_nodes:int -> horizon:float -> ?buckets:int -> unit -> t
(** Requires the trace to contain the run's [Job_started] events (i.e. a
    capacity large enough that none were evicted); [buckets] defaults
    to 60. *)

val mean_utilization : t -> float
(** Node-weighted mean utilisation over all buckets, in [0, 1]. *)

val render : t -> string
(** An ASCII bar chart of utilisation per bucket, annotated with kill
    counts. *)
