(** A fixed-size pool of worker domains with a shared FIFO task queue.

    Monte Carlo replication is embarrassingly parallel: thousands of
    independent simulations per configuration. The sealed container has no
    domainslib, so this is a small hand-rolled pool over [Domain.t] with a
    [Mutex]/[Condition]-protected queue.

    Determinism note: tasks must not share mutable state; each simulation
    derives its randomness from [(seed, replication index)], so results are
    identical whatever the domain interleaving. *)

type t

val create : ?num_domains:int -> unit -> t
(** [create ~num_domains ()] spawns that many worker domains (default
    [Domain.recommended_domain_count () - 1], at least 1).
    [num_domains = 0] builds a {e sequential} pool: every submission runs
    inline on the caller, which is useful for reproducible unit tests and
    for nesting (pools must not be used from inside their own tasks). *)

val num_workers : t -> int
(** Worker domain count; [0] for a sequential pool. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task; returns immediately (sequential pools run it inline). *)

val await : 'a future -> 'a
(** Block until the task finishes. Re-raises the task's exception, if any.
    May be called at most once per future from one caller. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], preserving order. Exceptions from tasks are
    re-raised after all tasks complete. *)

val init_array : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val shutdown : t -> unit
(** Join all workers. Outstanding tasks are completed first. Idempotent.
    Submitting after shutdown raises [Invalid_argument]. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** Create, run, and always shut the pool down. *)
