lib/parallel/pool.mli:
