type task = unit -> unit

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : task Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec wait () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.shutting_down then None
      else begin
        Condition.wait pool.has_work pool.mutex;
        wait ()
      end
    in
    let job = wait () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: negative domain count";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      workers = [];
    }
  in
  pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let num_workers t = List.length t.workers

let resolve fut result =
  Mutex.lock fut.fmutex;
  fut.state <- result;
  Condition.broadcast fut.fdone;
  Mutex.unlock fut.fmutex

let async t f =
  let fut = { fmutex = Mutex.create (); fdone = Condition.create (); state = Pending } in
  let run () =
    match f () with
    | v -> resolve fut (Done v)
    | exception exn -> resolve fut (Failed exn)
  in
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.async: pool is shut down"
  end;
  if t.workers = [] then begin
    (* Sequential pool: run inline, outside the lock. *)
    Mutex.unlock t.mutex;
    run ()
  end
  else begin
    Queue.push run t.queue;
    Condition.signal t.has_work;
    Mutex.unlock t.mutex
  end;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fdone fut.fmutex;
        wait ()
    | Done v ->
        Mutex.unlock fut.fmutex;
        v
    | Failed exn ->
        Mutex.unlock fut.fmutex;
        raise exn
  in
  wait ()

let init_array t n f =
  if n < 0 then invalid_arg "Pool.init_array: negative length";
  if n = 0 then [||]
  else if t.workers = [] then Array.init n f
  else begin
    (* One future per element: simulation tasks are coarse enough that
       per-task queue overhead is negligible, and uneven task costs then
       balance naturally. *)
    let futures = Array.init n (fun i -> async t (fun () -> f i)) in
    Array.map await futures
  end

let map_array t f xs = init_array t (Array.length xs) (fun i -> f xs.(i))

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?num_domains f =
  let pool = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
