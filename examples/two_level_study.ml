(* Two-level (SCR-style) checkpointing: when do cheap node-local snapshots
   pay off?

   Field studies report that a large share of HPC failures are "soft"
   (process crashes, transient faults) and recoverable from node-local
   state. The two-level scheme takes a fast local snapshot every few
   minutes in addition to the global PFS checkpoints; soft failures then
   roll back minutes instead of a full checkpoint period, and never touch
   the contended file system.

   This study prints the analytic optimum of Cocheck_core.Two_level next
   to a simulation of the full APEX workload under Least-Waste, sweeping
   the soft-failure fraction. *)

module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Strategy = Cocheck_core.Strategy
module Two_level = Cocheck_core.Two_level
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Table = Cocheck_util.Table

let () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  Format.printf "Scenario: %a@." Platform.pp platform;
  Format.printf
    "Local snapshots: 10 s pause every 10 min, 30 s soft recovery, no PFS traffic.@.@.";

  (* Analytic view for the dominant class. *)
  let eap = List.hd Apex.lanl_workload in
  let params soft_fraction =
    {
      Two_level.local_cost_s = 10.0;
      local_recovery_s = 30.0;
      global_cost_s = App_class.ckpt_time eap ~platform;
      global_recovery_s = App_class.recovery_time eap ~platform;
      mtbf_s = App_class.mtbf eap ~platform;
      soft_fraction;
    }
  in
  let ml soft_fraction =
    Config.local_level ~period_s:600.0 ~cost_s:10.0 ~recovery_s:30.0 ~soft_fraction
  in
  let run ?multilevel () =
    let cfg s =
      Config.make ~platform ~strategy:s ~seed:9 ~days:15.0 ?multilevel ()
    in
    let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
    let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
    let r = Simulator.run ~specs (cfg Strategy.Least_waste) in
    (r, Simulator.waste_ratio ~strategy:r ~baseline)
  in
  let _, single = run () in
  let table =
    Table.create
      ~headers:
        [
          "soft fraction"; "simulated waste"; "vs single-level"; "lost work ns";
          "analytic EAP optimum"; "worthwhile?";
        ]
  in
  List.iter
    (fun soft ->
      let r, w = run ~multilevel:(ml soft) () in
      let p = params soft in
      Table.add_row table
        [
          Printf.sprintf "%.2f" soft;
          Printf.sprintf "%.3f" w;
          Printf.sprintf "%+.3f" (w -. single);
          Printf.sprintf "%.3g" (List.assoc Metrics.Lost_work r.by_kind);
          Printf.sprintf "%.3f" (Two_level.optimal_waste p);
          (if Two_level.worthwhile p then "yes" else "no");
        ])
    [ 0.0; 0.25; 0.5; 0.75; 0.95 ];
  Format.printf "Least-Waste without a local level: waste %.3f@.@." single;
  print_string (Table.render table);
  Format.printf
    "@.The local level converts soft-failure rollbacks from checkpoint-period@.";
  Format.printf
    "scale to local-period scale; its value grows linearly with the soft@.";
  Format.printf "fraction, while its cost is a fixed small compute tax.@."
