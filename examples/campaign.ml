(* The campaign engine in one sitting: describe an experiment as a typed
   spec, run it cold against a results store, then run it again and watch
   every point load from cache instead of re-simulating.

     dune exec examples/campaign.exe *)

module Pool = Cocheck_parallel.Pool
module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy
module E = Cocheck_experiments

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let () =
  (* One value holds the whole experiment: platform, strategy set, swept
     axis, replication protocol. It serializes exactly — save it next to
     the results and the run is reproducible from the file alone. *)
  let spec =
    E.Spec.make ~name:"example"
      ~platform:(Platform.cielo ~bandwidth_gbs:40.0 ())
      ~strategies:[ Strategy.Least_waste; Strategy.Ordered_nb Strategy.Daly ]
      ~axis:(E.Spec.Mtbf_years [ 2.0; 10.0 ])
      ~reps:2 ~seed:42 ~days:2.0 ()
  in
  let store = Filename.concat (Filename.get_temp_dir_name ()) "cocheck-example-store" in
  if Sys.file_exists store then rm_rf store;
  E.Spec.save ~path:(Filename.concat (Filename.get_temp_dir_name ()) "campaign.json") spec;
  Printf.printf "spec digest: %s\n%!" (E.Spec.digest spec);
  Pool.with_pool (fun pool ->
      let report label (o : E.Runner.outcome) =
        Printf.printf "%-10s simulated=%d baselines=%d loaded=%d\n%!" label
          o.E.Runner.simulated o.E.Runner.baselines o.E.Runner.loaded
      in
      let store = E.Store.open_ store in
      let cold = E.Runner.run ~pool ~store spec in
      report "cold:" cold;
      (* Every (cell, strategy, replication) landed as one digest-keyed
         JSON record; a re-run — or a run resumed after a crash — loads
         them instead of simulating. *)
      let warm = E.Runner.run ~pool ~store spec in
      report "warm:" warm;
      print_string (E.Figures.render (E.Runner.to_figure cold)));
  rm_rf store
